//! Global optimization (paper §4.1): the LP of Eqs. (4)–(11) over per-arc
//! delay changes, and the LP-guided ECO of Algorithm 1.
//!
//! The paper minimizes `Σ|Δ|` subject to `Σ V ≤ U` and sweeps the bound
//! `U`. We solve the Lagrangian-equivalent scalarization
//! `min Σ V + λ·Σ|Δ|` and sweep `λ` — the same Pareto frontier, but every
//! sweep point starts feasible (`Δ = 0`), which keeps the in-tree simplex
//! solver in its well-conditioned regime (DESIGN.md §4). Each sweep point
//! is realized with the ECO engine and evaluated with the golden timer;
//! the best realizable point wins, subject to the paper's constraints
//! (7)–(8): no local-skew degradation at any corner.

use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use clk_liberty::{CellId, CornerId, Library};
use clk_lp::{LpError, Problem, RowKind, Solution, VarId};
use clk_netlist::{Arc, ArcId, ArcSet, ClockTree, Floorplan, NodeId, NodeKind, SinkPair};
use clk_obs::{kv, Deadline, LedgerRecord, Level, Obs};
use clk_route::RoutePath;
use clk_sta::{
    alpha_factors, arc_delays_ps, local_skew_ps, pair_skews, try_pair_skews, variation_report,
    CornerTiming, Timer,
};

use crate::fault::{
    FaultCtx, FaultKind, FaultSite, FlowError, PhaseBudget, PhaseProgress, RecoveryAction,
};
use crate::lut::{fit_ratio_bounds, ratio_scatter, RatioBounds, StageLuts};

/// Global-optimization knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalConfig {
    /// Optimize the `max_pairs` sink pairs with the largest current
    /// variation (the paper optimizes the top-critical pairs).
    pub max_pairs: usize,
    /// Constraint (10) upper bound: `D + Δ ≤ β·D`.
    pub beta: f64,
    /// Constraint (9): `D_max` = this × current max latency per corner.
    pub latency_slack: f64,
    /// The λ sweep of the scalarized objective (ascending; small λ pushes
    /// harder on variation at the cost of more ECO delay change).
    pub lambdas: Vec<f64>,
    /// Arcs whose worst-corner |Δ| is below this are left untouched, ps.
    pub delta_threshold_ps: f64,
    /// Longest permitted U-shape detour per arc, µm.
    pub max_detour_um: f64,
    /// Widening margin of the Fig. 2 ratio corridor.
    pub ratio_margin: f64,
    /// Acceptance: local skew may not grow by more than this factor…
    pub skew_guard_factor: f64,
    /// …plus this absolute allowance, ps (ECO discreteness).
    pub skew_guard_ps: f64,
    /// Per-arc fidelity gate: a rebuild is kept when its realized delay
    /// change is within `frac · ‖target‖₁ + abs` of the LP target (or the
    /// variation sum improves outright).
    pub fidelity_tol_frac: f64,
    /// Absolute part of the fidelity gate, ps per corner.
    pub fidelity_tol_ps: f64,
    /// Weight of the ECO search's uncertainty penalty (per ps of
    /// estimated configuration change).
    pub eco_uncertainty_frac: f64,
    /// Number of solve→ECO→re-time rounds (the framework is incremental;
    /// each round re-targets the arcs the previous ECO realized
    /// imperfectly).
    pub rounds: usize,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            max_pairs: 120,
            beta: 1.2,
            latency_slack: 1.08,
            lambdas: vec![0.02, 0.1, 0.4],
            delta_threshold_ps: 0.8,
            max_detour_um: 400.0,
            ratio_margin: 0.05,
            skew_guard_factor: 1.02,
            skew_guard_ps: 2.0,
            fidelity_tol_frac: 0.5,
            fidelity_tol_ps: 2.0,
            eco_uncertainty_frac: 0.25,
            rounds: 3,
        }
    }
}

/// Outcome of one λ sweep point (diagnostics + the U-sweep curve).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The λ of this point.
    pub lambda: f64,
    /// LP objective value (`ΣV + λ·Σ|Δ|`).
    pub lp_objective: f64,
    /// Sum of |Δ| the LP asked for, ps.
    pub lp_total_delta: f64,
    /// Arcs the ECO rebuilt for this point.
    pub arcs_changed: usize,
    /// Golden variation sum after the trial ECO (None: LP failed or no
    /// arc crossed the change threshold).
    pub variation_after: Option<f64>,
    /// Whether the point survived the local-skew guard and improved.
    pub accepted: bool,
}

/// Outcome of the global optimization.
#[derive(Debug, Clone)]
pub struct GlobalReport {
    /// Sum of normalized skew variation before, ps.
    pub variation_before: f64,
    /// Sum after the accepted ECO, ps.
    pub variation_after: f64,
    /// λ of the accepted sweep point (`None` when no point was accepted).
    pub lambda_used: Option<f64>,
    /// Arcs rebuilt by the accepted ECO.
    pub arcs_changed: usize,
    /// Simplex pivots spent across the sweep.
    pub lp_iterations: usize,
    /// Per-λ details of the sweep.
    pub sweep: Vec<SweepPoint>,
}

/// Per-arc LP variables.
struct ArcVars {
    /// `(pos, neg)` per corner.
    delta: Vec<(VarId, VarId)>,
}

/// A solved sweep point: the LP solution plus the per-arc variable map
/// needed to read the Δ targets back out.
type SolvedPoint = (Solution, BTreeMap<ArcId, ArcVars>);

/// Runs the global optimization and returns the optimized tree plus a
/// report. The input tree is not modified.
///
/// Runs up to [`GlobalConfig::rounds`] solve→ECO→re-time rounds and stops
/// early when a round yields < 0.2% additional reduction.
pub fn global_optimize(
    tree: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    cfg: &GlobalConfig,
) -> (ClockTree, GlobalReport) {
    global_optimize_guarded(tree, lib, fp, luts, cfg, None)
}

/// [`global_optimize`] with an explicit local-skew guard baseline
/// (ps per corner). `None` computes the baseline from the input tree;
/// flows pass the *original* tree's skews so that multi-phase guards do
/// not compound.
///
/// # Panics
///
/// Panics if the incoming tree cannot be timed; use
/// [`global_optimize_checked`] for a typed error instead.
pub fn global_optimize_guarded(
    tree: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    cfg: &GlobalConfig,
    guard_baseline: Option<&[f64]>,
) -> (ClockTree, GlobalReport) {
    let mut ctx = FaultCtx::passive();
    match global_optimize_checked(
        tree,
        lib,
        fp,
        luts,
        cfg,
        guard_baseline,
        &mut ctx,
        &PhaseBudget::unlimited(),
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// The checked core of the global phase: runs under a fault context
/// (injection plan, fault log, deadline) and a phase budget, returning
/// typed errors instead of panicking.
///
/// Robustness properties:
///
/// * every LP solve goes through the retry/degradation ladder of
///   [`solve_with_ladder`] — a sweep point is only abandoned after
///   relaxed guardbands and a corridor-free formulation both fail;
/// * each trial ECO runs on a clone under `catch_unwind`, so a panic in
///   the ECO engine rolls the sweep point back instead of killing the
///   flow;
/// * non-finite arc delays are detected before the LP sees them
///   (recomputed once, then frozen out of the formulation);
/// * the first round always runs; the wall-clock budget short-circuits
///   later rounds with the best-so-far tree.
///
/// # Errors
///
/// [`FlowError::Timing`] when the *incoming* tree cannot be timed —
/// everything downstream of that baseline is absorbed and degraded.
#[allow(clippy::too_many_arguments)]
pub fn global_optimize_checked(
    tree: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    cfg: &GlobalConfig,
    guard_baseline: Option<&[f64]>,
    ctx: &mut FaultCtx<'_>,
    budget: &PhaseBudget,
) -> Result<(ClockTree, GlobalReport), FlowError> {
    let mut current = tree.clone();
    let mut total: Option<GlobalReport> = None;
    let obs = ctx.obs.clone();
    let rounds = budget.clamp_iterations(cfg.rounds.max(1)).max(1);
    if rounds < cfg.rounds.max(1) {
        ctx.record(
            "global",
            FaultKind::IterationBudget,
            RecoveryAction::Degrade,
            format!("rounds capped {} -> {rounds}", cfg.rounds.max(1)),
        );
    }
    let mut rounds_done = 0usize;
    let mut cut: Option<Option<&'static str>> = None;
    for round in 0..rounds {
        if ctx.out_of_time() {
            cut = Some(ctx.deadline.trigger());
            ctx.record_interrupt(
                "global",
                RecoveryAction::Degrade,
                format!("deadline cut before round {round} of {rounds}; returning best-so-far"),
            );
            break;
        }
        let mut round_span = obs.span_at(
            Level::Debug,
            "global.round",
            vec![kv("round", round as u64)],
        );
        let (next, rep) = match global_round(
            &current,
            lib,
            fp,
            luts,
            cfg,
            guard_baseline,
            ctx,
            round,
        ) {
            Ok(r) => r,
            // a cut mid-round discards only that round's uncommitted
            // trial; the last committed tree stays the result
            Err(e) if e.is_interrupt() => {
                cut = Some(ctx.deadline.trigger());
                ctx.record_interrupt(
                    "global",
                    RecoveryAction::Rollback,
                    format!("round {round} cut mid-flight ({e}); trial discarded, returning best-so-far"),
                );
                round_span.record("outcome", "interrupted");
                drop(round_span);
                break;
            }
            Err(e) => return Err(e),
        };
        obs.count("global.rounds", 1);
        round_span.record("variation_before", rep.variation_before);
        round_span.record("variation_after", rep.variation_after);
        round_span.record("arcs_changed", rep.arcs_changed as u64);
        round_span.record("lp_iterations", rep.lp_iterations as u64);
        drop(round_span);
        let gained = rep.variation_before - rep.variation_after;
        let enough = gained > 0.002 * rep.variation_before;
        match &mut total {
            None => total = Some(rep),
            Some(t) => {
                t.variation_after = rep.variation_after;
                t.arcs_changed += rep.arcs_changed;
                t.lp_iterations += rep.lp_iterations;
                t.sweep.extend(rep.sweep);
                if t.lambda_used.is_none() {
                    t.lambda_used = rep.lambda_used;
                }
            }
        }
        current = next;
        rounds_done += 1;
        // a round cut mid-λ-sweep returns its committed best-so-far; the
        // re-poll here turns the quiet break into a recorded interrupt
        if ctx.out_of_time() {
            cut = Some(ctx.deadline.trigger());
            ctx.record_interrupt(
                "global",
                RecoveryAction::Degrade,
                format!(
                    "deadline cut after {} of {rounds} rounds; returning best-so-far",
                    round + 1
                ),
            );
            break;
        }
        if !enough {
            break;
        }
    }
    ctx.progress = Some(match cut {
        Some(trigger) => PhaseProgress::interrupted("global", rounds_done, rounds, trigger),
        None => PhaseProgress::complete("global", rounds_done, rounds),
    });
    let Some(report) = total else {
        // only reachable when the deadline cut the flow before round 0
        // finished — there is no baseline global result to fall back to
        return Err(FlowError::Interrupted { phase: "global" });
    };
    Ok((current, report))
}

/// One solve→ECO→verify round of the global optimization.
#[allow(clippy::too_many_arguments)]
fn global_round(
    tree: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    cfg: &GlobalConfig,
    guard_baseline: Option<&[f64]>,
    ctx: &mut FaultCtx<'_>,
    round: usize,
) -> Result<(ClockTree, GlobalReport), FlowError> {
    // the round runs single-threaded, so its golden timer can observe
    // the phase deadline directly (workers inside `execute_eco` re-time
    // deterministically without one)
    let timer = Timer::golden().with_deadline(ctx.deadline.clone());
    let timings: Vec<CornerTiming> = timer.try_analyze_all(tree, lib)?;
    let arcs = ArcSet::extract(tree);
    let mut arc_d: Vec<Vec<f64>> = timings
        .iter()
        .map(|t| arc_delays_ps(tree, &arcs, t))
        .collect();
    if ctx.fire(FaultSite::NanArcDelay) {
        if let Some(v) = arc_d.first_mut().and_then(|row| row.first_mut()) {
            *v = f64::NAN;
        }
    }
    if arc_d.iter().flatten().any(|v| !v.is_finite()) {
        ctx.record(
            "global",
            FaultKind::NanArcDelay,
            RecoveryAction::Retry,
            "non-finite arc delay detected; recomputing from the timed tree",
        );
        arc_d = timings
            .iter()
            .map(|t| arc_delays_ps(tree, &arcs, t))
            .collect();
        // arcs that are *still* non-finite are frozen by build_problem
    }
    let n_corners = lib.corner_count();

    // skews + alphas over *all* pairs (alphas are an input parameter fixed
    // before optimization, per the paper)
    let all_pairs = tree.sink_pairs().to_vec();
    let per_corner_skews: Vec<Vec<f64>> = timings
        .iter()
        .map(|t| try_pair_skews(t, &all_pairs))
        .collect::<Result<_, _>>()?;
    let alphas = alpha_factors(&per_corner_skews);
    let before_report = variation_report(&per_corner_skews, &alphas, None);
    let variation_before = before_report.sum;

    // top-variation pair selection
    let mut order: Vec<usize> = (0..all_pairs.len()).collect();
    order.sort_by(|&a, &b| before_report.per_pair[b].total_cmp(&before_report.per_pair[a]));
    order.truncate(cfg.max_pairs);
    let sel_pairs: Vec<SinkPair> = order.iter().map(|&i| all_pairs[i]).collect();

    // per-sink arc paths and the involved-arc set; path_of is a BTreeMap
    // because its iteration order becomes the LP's row-(9) order
    let mut path_of: BTreeMap<NodeId, Vec<ArcId>> = BTreeMap::new();
    let mut involved_set: HashSet<ArcId> = HashSet::new();
    for p in &sel_pairs {
        for s in [p.a, p.b] {
            let path = path_of
                .entry(s)
                .or_insert_with(|| arcs.path_arcs(tree, s))
                .clone();
            involved_set.extend(path);
        }
    }
    let involved: Vec<ArcId> = {
        let mut v: Vec<ArcId> = involved_set.into_iter().collect();
        v.sort_unstable();
        v
    };

    // ratio corridors (k vs corner 0) once per run
    let bounds: Vec<Option<RatioBounds>> = (0..n_corners)
        .map(|k| {
            (k != 0).then(|| {
                fit_ratio_bounds(
                    &ratio_scatter(luts, CornerId(k), CornerId(0)),
                    cfg.ratio_margin,
                )
            })
        })
        .collect();

    let mut best: Option<(ClockTree, f64, f64, usize, Option<f64>)> = None;
    let mut lp_iterations = 0usize;
    let mut sweep = Vec::with_capacity(cfg.lambdas.len());
    let before_local: Vec<f64> = match guard_baseline {
        Some(b) => b.to_vec(),
        None => per_corner_skews.iter().map(|s| local_skew_ps(s)).collect(),
    };

    let obs = ctx.obs.clone();
    // decision-ledger checkpoints are evaluated under the flow's
    // init-time alphas (α*, published via the ledger) so committed
    // deltas telescope across rounds; the round's own `alphas` still
    // drive every accept decision unchanged
    let ledger = obs.ledger();
    let star_owned = ledger.alphas();
    let round_u = round as u64;
    let star: Option<&[f64]> = ledger
        .is_enabled()
        .then(|| star_owned.as_deref().unwrap_or(&alphas));
    let var_star_before = star.map(|sa| variation_report(&per_corner_skews, sa, None).sum);
    if let Some(vs) = var_star_before {
        obs.ledger_append(LedgerRecord::RoundStart {
            round: round_u,
            var: vs,
        });
    }
    for &lambda in &cfg.lambdas {
        // cut mid-sweep: keep the best already-realized λ point; the
        // caller re-polls and records the interruption
        if ctx.out_of_time() {
            break;
        }
        let mut lambda_span =
            obs.span_at(Level::Debug, "global.lambda", vec![kv("lambda", lambda)]);
        let mut point = SweepPoint {
            lambda,
            lp_objective: f64::NAN,
            lp_total_delta: 0.0,
            arcs_changed: 0,
            variation_after: None,
            accepted: false,
        };
        let solved = match solve_with_ladder(
            tree,
            lib,
            luts,
            &arcs,
            &arc_d,
            &timings,
            &sel_pairs,
            &path_of,
            &involved,
            &alphas,
            &bounds,
            LpObjective::Scalarized(lambda),
            cfg,
            ctx,
        ) {
            Ok(s) => s,
            // an interrupted solve carries no certificate: drop this λ
            // point, keep the sweep's best-so-far, stop sweeping
            Err(e) if e.is_interrupt() => {
                lambda_span.record("outcome", "interrupted");
                ledger_lambda(&obs, round_u, &point, "interrupted", None);
                sweep.push(point);
                break;
            }
            Err(e) => return Err(e),
        };
        let Some(((solution, vars), rung)) = solved else {
            lambda_span.record("outcome", "lp_skipped");
            ledger_lambda(&obs, round_u, &point, "skipped", None);
            sweep.push(point);
            continue;
        };
        lp_iterations += solution.iterations;
        lambda_span.record("lp_iterations", solution.iterations as u64);
        lambda_span.record("lp_objective", solution.objective);
        point.lp_objective = solution.objective;
        point.lp_total_delta = vars
            .values()
            .flat_map(|av| av.delta.iter())
            .map(|&(p, n)| {
                solution.value(p).unwrap_or(f64::NAN) + solution.value(n).unwrap_or(f64::NAN)
            })
            .sum();

        // realize with the ECO engine on a clone, arc by arc with golden
        // accept/rollback (see `execute_eco`); the whole trial sweep is
        // panic-isolated — the clone is simply discarded on unwind, the
        // committed tree is never touched
        let deadline = ctx.deadline.clone();
        let eco = catch_unwind(AssertUnwindSafe(|| {
            let mut trial = tree.clone();
            let (changed, after, star_after) = execute_eco(
                &mut trial,
                lib,
                fp,
                luts,
                &arcs,
                &arc_d,
                &timings,
                &involved,
                &vars,
                &solution,
                &all_pairs,
                &alphas,
                &before_local,
                variation_before,
                cfg,
                &obs,
                &deadline,
                round,
                lambda,
                star,
                var_star_before,
            );
            (trial, changed, after, star_after)
        }));
        let Ok((trial, changed, after, star_after)) = eco else {
            ctx.record(
                "global",
                FaultKind::EcoPanic,
                RecoveryAction::Rollback,
                format!("ECO sweep at lambda {lambda} panicked; trial discarded"),
            );
            lambda_span.record("outcome", "eco_panic");
            ledger_lambda(&obs, round_u, &point, rung, None);
            sweep.push(point);
            continue;
        };
        point.arcs_changed = changed;
        lambda_span.record("arcs_changed", changed as u64);
        if changed == 0 {
            lambda_span.record("outcome", "no_change");
            ledger_lambda(&obs, round_u, &point, rung, star_after);
            sweep.push(point);
            continue;
        }
        if let Err(e) = trial.validate() {
            ctx.record(
                "global",
                FaultKind::PhaseError,
                RecoveryAction::Rollback,
                format!("trial ECO at lambda {lambda} broke tree invariants ({e}); discarded"),
            );
            lambda_span.record("outcome", "invalid_tree");
            ledger_lambda(&obs, round_u, &point, rung, None);
            sweep.push(point);
            continue;
        }
        #[cfg(debug_assertions)]
        {
            let lint = clk_lint::LintRunner::structural()
                .run(&clk_lint::DesignCtx::with_floorplan(&trial, lib, fp));
            if lint.has_errors() {
                ctx.record(
                    "global",
                    FaultKind::PhaseError,
                    RecoveryAction::Rollback,
                    format!(
                        "trial ECO at lambda {lambda} failed structural lint; discarded:\n{}",
                        lint.to_text()
                    ),
                );
                lambda_span.record("outcome", "lint_reject");
                ledger_lambda(&obs, round_u, &point, rung, None);
                sweep.push(point);
                continue;
            }
        }
        point.variation_after = Some(after);
        lambda_span.record("variation_after", after);
        if after < variation_before && best.as_ref().is_none_or(|&(_, v, _, _, _)| after < v) {
            point.accepted = true;
            best = Some((trial, after, lambda, changed, star_after));
        }
        lambda_span.record(
            "outcome",
            if point.accepted {
                "accepted"
            } else {
                "rejected"
            },
        );
        ledger_lambda(&obs, round_u, &point, rung, star_after);
        sweep.push(point);
    }

    if ledger.is_enabled() {
        let fallback = var_star_before.unwrap_or(variation_before);
        let (winner_lambda, adopted, var) = match &best {
            Some((_, _, lambda, _, star_after)) => {
                (Some(*lambda), true, star_after.unwrap_or(fallback))
            }
            None => (None, false, fallback),
        };
        obs.ledger_append(LedgerRecord::RoundEnd {
            round: round_u,
            winner_lambda,
            adopted,
            var,
        });
    }
    Ok(match best {
        Some((t, after, lambda, changed, _)) => (
            t,
            GlobalReport {
                variation_before,
                variation_after: after,
                lambda_used: Some(lambda),
                arcs_changed: changed,
                lp_iterations,
                sweep,
            },
        ),
        None => (
            tree.clone(),
            GlobalReport {
                variation_before,
                variation_after: variation_before,
                lambda_used: None,
                arcs_changed: 0,
                lp_iterations,
                sweep,
            },
        ),
    })
}

/// Appends one λ-trial summary to the decision ledger. `rung` is the
/// retry-ladder rung the solve landed on; a solved point always passed
/// exact certificate verification (`cert: "ok"`), an unsolved one has
/// no certificate to report.
fn ledger_lambda(obs: &Obs, round: u64, point: &SweepPoint, rung: &str, var_star: Option<f64>) {
    if !obs.ledgering() {
        return;
    }
    let solved = point.lp_objective.is_finite();
    obs.ledger_append(LedgerRecord::Lambda {
        round,
        lambda: point.lambda,
        rung: rung.to_string(),
        cert: if solved { "ok" } else { "none" }.to_string(),
        lp_objective: solved.then_some(point.lp_objective),
        arcs_changed: point.arcs_changed as u64,
        accepted: point.accepted,
        var: var_star,
    });
}

/// Which objective variant the LP is built with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpObjective {
    /// `min ΣV + λ·Σ|Δ|` — the Lagrangian scalarization the flow sweeps.
    Scalarized(f64),
    /// The paper's literal Eqs. (4)–(5): `min Σ|Δ|` subject to `ΣV ≤ U`.
    UBound(f64),
}

/// Guardband relaxation applied along the LP retry/degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Relaxation {
    /// Additive widening of the Fig. 2 ratio corridor.
    ratio_widen: f64,
    /// Scale on the Eq. (10) delay-growth bound `β`.
    beta_scale: f64,
    /// Scale on the Eq. (9) latency slack.
    latency_slack_scale: f64,
    /// Drop the Eq. (11) corridor rows entirely (last formulation tried).
    drop_ratio_rows: bool,
}

impl Relaxation {
    /// The as-configured formulation.
    const NONE: Relaxation = Relaxation {
        ratio_widen: 0.0,
        beta_scale: 1.0,
        latency_slack_scale: 1.0,
        drop_ratio_rows: false,
    };
    /// First retry: widened guardbands.
    const RELAXED: Relaxation = Relaxation {
        ratio_widen: 0.10,
        beta_scale: 1.1,
        latency_slack_scale: 1.05,
        drop_ratio_rows: false,
    };
    /// Last resort: no cross-corner ratio corridor at all.
    const DEGRADED: Relaxation = Relaxation {
        ratio_widen: 0.0,
        beta_scale: 1.1,
        latency_slack_scale: 1.05,
        drop_ratio_rows: true,
    };
}

/// Why one rung of the LP ladder failed: the solver itself, or a solve
/// that *returned* but whose certificate failed exact re-verification.
enum LadderFault {
    Lp(LpError),
    Cert(FlowError),
}

impl std::fmt::Display for LadderFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderFault::Lp(e) => write!(f, "{e}"),
            LadderFault::Cert(e) => write!(f, "{e}"),
        }
    }
}

impl LadderFault {
    fn kind(&self) -> FaultKind {
        match self {
            LadderFault::Lp(_) => FaultKind::LpFailure,
            LadderFault::Cert(_) => FaultKind::CertViolation,
        }
    }
}

/// Re-verifies a solve's optimality certificate in exact arithmetic,
/// recording check latency, residual, and outcome counters under
/// `cert.*`.
///
/// # Errors
///
/// [`FlowError::CertViolation`] with the rendered violation list when
/// the certificate does not verify — the solution must not be used.
pub(crate) fn verify_certificate(
    p: &Problem,
    sol: &Solution,
    obs: &Obs,
    site: &str,
) -> Result<(), FlowError> {
    let t0 = clk_obs::wall_now();
    let report = clk_cert::check(p, sol);
    obs.count("cert.checks", 1);
    obs.observe("cert.check.ms", t0.elapsed().as_secs_f64() * 1e3);
    obs.observe("cert.max_resid", report.max_resid);
    if report.ok() {
        return Ok(());
    }
    obs.count("cert.violations", 1);
    let rendered = report
        .violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("; ");
    obs.event(
        Level::Warn,
        "cert.violation",
        vec![kv("site", site), kv("report", rendered.clone())],
    );
    Err(FlowError::CertViolation {
        site: site.to_owned(),
        report: rendered,
    })
}

/// The LP retry/degradation ladder: as-built → relaxed guardbands →
/// corridor-free formulation → skip the sweep point. Every rung is
/// recorded in the fault log; builder rejections (malformed models)
/// skip directly — re-solving an ill-posed model cannot help. A solve
/// whose certificate fails exact re-verification is treated like a
/// failed solve: the answer is discarded and the next rung runs.
///
/// # Errors
///
/// `Err` only for cooperative interruption
/// ([`LpError::Interrupted`], surfaced as [`FlowError::Lp`]): a
/// cancelled solve must not be retried on a lower rung — the ladder is
/// for *broken* solves, not abandoned ones. Every genuine failure
/// degrades to `Ok(None)` (skip the sweep point).
#[allow(clippy::too_many_arguments)]
fn solve_with_ladder(
    tree: &ClockTree,
    lib: &Library,
    luts: &StageLuts,
    arcs: &ArcSet,
    arc_d: &[Vec<f64>],
    timings: &[CornerTiming],
    sel_pairs: &[SinkPair],
    path_of: &BTreeMap<NodeId, Vec<ArcId>>,
    involved: &[ArcId],
    alphas: &[f64],
    bounds: &[Option<RatioBounds>],
    objective: LpObjective,
    cfg: &GlobalConfig,
    ctx: &mut FaultCtx<'_>,
) -> Result<Option<(SolvedPoint, &'static str)>, FlowError> {
    let obs = ctx.obs.clone();
    let attempt = |relax: &Relaxation,
                   rung: &str,
                   ctx: &mut FaultCtx<'_>|
     -> Result<SolvedPoint, LadderFault> {
        let (p, vars) = build_problem(
            tree, lib, luts, arcs, arc_d, timings, sel_pairs, path_of, involved, alphas, bounds,
            objective, cfg, relax, ctx,
        )
        .map_err(LadderFault::Lp)?;
        ctx.obs.count("global.lp_rows_built", p.num_rows() as u64);
        let sol =
            clk_lp::solve_with_deadline(&p, &ctx.obs, &ctx.deadline).map_err(LadderFault::Lp)?;
        let site = format!("{objective:?} rung={rung}");
        verify_certificate(&p, &sol, &ctx.obs, &site).map_err(LadderFault::Cert)?;
        Ok((sol, vars))
    };
    let rung_taken = |rung: &str| {
        obs.event(Level::Debug, "global.ladder", vec![kv("rung", rung)]);
        obs.count(&format!("global.ladder.{rung}"), 1);
    };
    match attempt(&Relaxation::NONE, "none", ctx) {
        Ok(r) => {
            rung_taken("none");
            return Ok(Some((r, "none")));
        }
        Err(LadderFault::Lp(LpError::Interrupted)) => {
            rung_taken("interrupted");
            return Err(FlowError::Lp(LpError::Interrupted));
        }
        Err(LadderFault::Lp(e @ (LpError::BadProblem(_) | LpError::UnknownTerm { .. }))) => {
            ctx.record(
                "global",
                FaultKind::LpFailure,
                RecoveryAction::Skip,
                format!("LP build rejected ({e}); skipping this sweep point"),
            );
            rung_taken("skipped");
            return Ok(None);
        }
        Err(e) => ctx.record(
            "global",
            e.kind(),
            RecoveryAction::Retry,
            format!("{e}; retrying with relaxed guardbands"),
        ),
    }
    match attempt(&Relaxation::RELAXED, "relaxed", ctx) {
        Ok(r) => {
            rung_taken("relaxed");
            return Ok(Some((r, "relaxed")));
        }
        Err(LadderFault::Lp(LpError::Interrupted)) => {
            rung_taken("interrupted");
            return Err(FlowError::Lp(LpError::Interrupted));
        }
        Err(e) => ctx.record(
            "global",
            e.kind(),
            RecoveryAction::Degrade,
            format!("{e} under relaxed guardbands; dropping ratio-corridor rows"),
        ),
    }
    match attempt(&Relaxation::DEGRADED, "degraded", ctx) {
        Ok(r) => {
            rung_taken("degraded");
            Ok(Some((r, "degraded")))
        }
        Err(LadderFault::Lp(LpError::Interrupted)) => {
            rung_taken("interrupted");
            Err(FlowError::Lp(LpError::Interrupted))
        }
        Err(e) => {
            ctx.record(
                "global",
                e.kind(),
                RecoveryAction::Skip,
                format!("{e} even without ratio rows; skipping this sweep point"),
            );
            rung_taken("skipped");
            Ok(None)
        }
    }
}

/// Builds the LP of Eqs. (4)–(11) and solves it once, with no ladder —
/// the analysis-path entry (`u_sweep`) that predates the fault runtime.
#[allow(clippy::too_many_arguments)]
fn build_and_solve(
    tree: &ClockTree,
    lib: &Library,
    luts: &StageLuts,
    arcs: &ArcSet,
    arc_d: &[Vec<f64>],
    timings: &[CornerTiming],
    sel_pairs: &[SinkPair],
    path_of: &BTreeMap<NodeId, Vec<ArcId>>,
    involved: &[ArcId],
    alphas: &[f64],
    bounds: &[Option<RatioBounds>],
    objective: LpObjective,
    cfg: &GlobalConfig,
) -> Option<SolvedPoint> {
    let mut ctx = FaultCtx::passive();
    let (p, vars) = build_problem(
        tree,
        lib,
        luts,
        arcs,
        arc_d,
        timings,
        sel_pairs,
        path_of,
        involved,
        alphas,
        bounds,
        objective,
        cfg,
        &Relaxation::NONE,
        &mut ctx,
    )
    .ok()?;
    let sol = clk_lp::solve(&p).ok()?;
    let site = format!("{objective:?} u_sweep");
    verify_certificate(&p, &sol, &ctx.obs, &site).ok()?;
    Some((sol, vars))
}

/// Builds the LP of Eqs. (4)–(11) under a [`Relaxation`].
///
/// Arcs whose timed delay or minimum-delay estimate is non-finite
/// (corrupt LUT row, poisoned timing) are **frozen**: their Δ variables
/// get `[0, 0]` bounds and they are excluded from the Eq. (11) corridor,
/// so one bad delay model degrades that arc instead of poisoning the
/// whole formulation.
///
/// # Errors
///
/// Propagates the builder's [`LpError`] (non-finite bound/coefficient,
/// unknown variable) instead of panicking.
#[allow(clippy::too_many_arguments)]
fn build_problem(
    tree: &ClockTree,
    lib: &Library,
    luts: &StageLuts,
    arcs: &ArcSet,
    arc_d: &[Vec<f64>],
    timings: &[CornerTiming],
    sel_pairs: &[SinkPair],
    path_of: &BTreeMap<NodeId, Vec<ArcId>>,
    involved: &[ArcId],
    alphas: &[f64],
    bounds: &[Option<RatioBounds>],
    objective: LpObjective,
    cfg: &GlobalConfig,
    relax: &Relaxation,
    ctx: &mut FaultCtx<'_>,
) -> Result<(Problem, BTreeMap<ArcId, ArcVars>), LpError> {
    let n_corners = arc_d.len();
    let (delta_cost, v_cost) = match objective {
        LpObjective::Scalarized(lambda) => (lambda, 1.0),
        LpObjective::UBound(_) => (1.0, 0.0),
    };
    let mut p = Problem::new();
    let mut vars: BTreeMap<ArcId, ArcVars> = BTreeMap::new();
    let mut v_vars: Vec<VarId> = Vec::with_capacity(sel_pairs.len());
    let mut frozen: HashSet<ArcId> = HashSet::new();

    for &aid in involved {
        let arc = arcs.arc(aid);
        let len = arc.length_um(tree).max(1.0);
        let drv = tree.cell(arc.from).unwrap_or(CellId(0));
        let end_load = end_load_ff(tree, lib, arc);
        let mut dd: Vec<(f64, f64)> = Vec::with_capacity(n_corners);
        for k in 0..n_corners {
            let d = arc_d[k][aid.0 as usize];
            let slew = timings[k].slew_ps(arc.from);
            let mut dmin = luts.min_arc_delay(lib, CornerId(k), drv, slew, len, end_load);
            if ctx.fire(FaultSite::CorruptLutRow) {
                dmin = f64::NAN;
            }
            dd.push((d, dmin));
        }
        let mut delta = Vec::with_capacity(n_corners);
        if dd
            .iter()
            .any(|&(d, dmin)| !d.is_finite() || !dmin.is_finite())
        {
            frozen.insert(aid);
            ctx.record(
                "global",
                FaultKind::CorruptDelayModel,
                RecoveryAction::Degrade,
                format!("arc {aid}: non-finite delay model; freezing its LP variables at 0"),
            );
            for _ in 0..n_corners {
                let pos = p.add_var(0.0, 0.0, delta_cost)?;
                let neg = p.add_var(0.0, 0.0, delta_cost)?;
                delta.push((pos, neg));
            }
        } else {
            for (d, dmin) in dd {
                let up = ((cfg.beta * relax.beta_scale - 1.0) * d).max(0.0);
                let down = (d - dmin).max(0.0);
                let pos = p.add_var(0.0, up, delta_cost)?;
                let neg = p.add_var(0.0, down, delta_cost)?;
                delta.push((pos, neg));
            }
        }
        vars.insert(aid, ArcVars { delta });
    }

    // Per-pair V variables and constraints (6)–(8).
    for (pi, pair) in sel_pairs.iter().enumerate() {
        let v = p.add_var(0.0, f64::INFINITY, v_cost)?;
        v_vars.push(v);
        let pa = &path_of[&pair.a];
        let pb = &path_of[&pair.b];
        // symmetric difference: shared prefix arcs cancel out of the skew
        let set_b: HashSet<ArcId> = pb.iter().copied().collect();
        let set_a: HashSet<ArcId> = pa.iter().copied().collect();
        let only_a: Vec<ArcId> = pa.iter().copied().filter(|x| !set_b.contains(x)).collect();
        let only_b: Vec<ArcId> = pb.iter().copied().filter(|x| !set_a.contains(x)).collect();
        // S_k(Δ) terms with coefficient `c` at corner k
        let skew_terms = |k: usize, c: f64, terms: &mut Vec<(VarId, f64)>| {
            for &aid in &only_a {
                let (pos, neg) = vars[&aid].delta[k];
                terms.push((pos, c));
                terms.push((neg, -c));
            }
            for &aid in &only_b {
                let (pos, neg) = vars[&aid].delta[k];
                terms.push((pos, -c));
                terms.push((neg, c));
            }
        };
        let s0: Vec<f64> = (0..n_corners)
            .map(|k| timings[k].arrival_ps(pair.a) - timings[k].arrival_ps(pair.b))
            .collect();
        let _ = pi;
        // (6): V ≥ ±(αk·S_k − αk'·S_k')
        for k in 0..n_corners {
            for k2 in (k + 1)..n_corners {
                let base = alphas[k] * s0[k] - alphas[k2] * s0[k2];
                for sign in [1.0, -1.0] {
                    let mut terms = vec![(v, 1.0)];
                    skew_terms(k, -sign * alphas[k], &mut terms);
                    skew_terms(k2, sign * alphas[k2], &mut terms);
                    p.add_row(RowKind::Ge, sign * base, &terms)?;
                }
            }
        }
        // (7): |S_k(Δ)| ≤ |S_k(0)| at every corner
        for (k, &s0k) in s0.iter().enumerate() {
            let cap = s0k.abs();
            for sign in [1.0, -1.0] {
                let mut terms = Vec::new();
                skew_terms(k, sign, &mut terms);
                p.add_row(RowKind::Le, cap - sign * s0k, &terms)?;
            }
        }
        // (8): |αk·S_k − α0·S_0| may not grow, k ≠ 0
        for k in 1..n_corners {
            let cap = (alphas[k] * s0[k] - alphas[0] * s0[0]).abs();
            let base = alphas[k] * s0[k] - alphas[0] * s0[0];
            for sign in [1.0, -1.0] {
                let mut terms = Vec::new();
                skew_terms(k, sign * alphas[k], &mut terms);
                skew_terms(0, -sign * alphas[0], &mut terms);
                p.add_row(RowKind::Le, cap - sign * base, &terms)?;
            }
        }
    }

    // (9): path latency bound per sink per corner
    for (sink, path) in path_of {
        for (k, timing) in timings.iter().enumerate().take(n_corners) {
            let lat = timing.arrival_ps(*sink);
            let dmax = timing.max_latency_ps(tree) * cfg.latency_slack * relax.latency_slack_scale;
            let terms: Vec<(VarId, f64)> = path
                .iter()
                .flat_map(|aid| {
                    let (pos, neg) = vars[aid].delta[k];
                    [(pos, 1.0), (neg, -1.0)]
                })
                .collect();
            p.add_row(RowKind::Le, dmax - lat, &terms)?;
        }
    }

    // (11): cross-corner delay-ratio corridor per arc, k vs 0
    if !relax.drop_ratio_rows {
        for &aid in involved {
            if frozen.contains(&aid) {
                continue; // a frozen arc has no meaningful ratio
            }
            let arc = arcs.arc(aid);
            let len = arc.length_um(tree);
            if len < 20.0 {
                continue; // ratio of a near-zero-length arc is meaningless
            }
            let d0 = arc_d[0][aid.0 as usize];
            let x = d0 / len;
            let (p0, n0) = vars[&aid].delta[0];
            for k in 1..n_corners {
                let Some(b) = &bounds[k] else { continue };
                let (lo, hi) = b.bounds(x);
                let (lo, hi) = (lo - relax.ratio_widen, hi + relax.ratio_widen);
                let dk = arc_d[k][aid.0 as usize];
                let (pk, nk) = vars[&aid].delta[k];
                // dk + Δk − hi·(d0 + Δ0) ≤ 0
                p.add_row(
                    RowKind::Le,
                    hi * d0 - dk,
                    &[(pk, 1.0), (nk, -1.0), (p0, -hi), (n0, hi)],
                )?;
                // dk + Δk − lo·(d0 + Δ0) ≥ 0
                p.add_row(
                    RowKind::Ge,
                    lo * d0 - dk,
                    &[(pk, 1.0), (nk, -1.0), (p0, -lo), (n0, lo)],
                )?;
            }
        }
    }

    // (5): Σ V ≤ U in the paper's literal formulation
    if let LpObjective::UBound(u) = objective {
        let terms: Vec<(VarId, f64)> = v_vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_row(RowKind::Le, u, &terms)?;
    }

    // debug-mode model audit: numeric sanity and the Eq.(6)-(11) row
    // census must match what the loops above were supposed to build
    #[cfg(debug_assertions)]
    {
        let shape = clk_lint::lp::LpShape {
            n_corners,
            n_pairs: sel_pairs.len(),
            n_involved_arcs: involved.len(),
            n_long_arcs: if relax.drop_ratio_rows {
                0
            } else {
                involved
                    .iter()
                    .filter(|&&aid| !frozen.contains(&aid) && arcs.arc(aid).length_um(tree) >= 20.0)
                    .count()
            },
            n_latency_sinks: path_of.len(),
            ubound: matches!(objective, LpObjective::UBound(_)),
        };
        let mut diags = clk_lint::lp::audit_problem(&p);
        diags.extend(clk_lint::lp::audit_shape(&p, &shape));
        assert!(diags.is_empty(), "LP model audit failed:\n{diags:#?}");
    }

    // chaos hook: a contradictory row (0 ≤ −1) that passes builder
    // validation but makes the model infeasible, exercising the ladder
    if ctx.fire(FaultSite::InfeasibleLp) {
        p.add_row(RowKind::Le, -1.0, &[])?;
    }

    Ok((p, vars))
}

/// One point of the paper's U-sweep Pareto curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct USweepPoint {
    /// The bound `U` on `Σ V`.
    pub u: f64,
    /// The minimum total delay change `Σ|Δ|` the LP needs to satisfy it.
    pub total_delta: f64,
    /// `Σ V` actually attained (≤ `u`).
    pub sum_v: f64,
    /// Whether the LP was feasible at this `U`.
    pub feasible: bool,
}

/// Traces the paper's literal formulation: minimize `Σ|Δ|` subject to
/// `Σ V ≤ U`, sweeping `U` on a geometric grid from the current variation
/// sum down toward the LP's unconstrained optimum (paper §4.1: "We then
/// sweep this upper bound to search for the achievable solution with
/// minimum sum of skew variations"). Returns one point per grid value.
/// This is the analysis view; the ECO flow uses the Lagrangian-equivalent
/// scalarization, which traces the same Pareto frontier.
pub fn u_sweep(
    tree: &ClockTree,
    lib: &Library,
    luts: &StageLuts,
    cfg: &GlobalConfig,
    n_points: usize,
) -> Vec<USweepPoint> {
    let timer = Timer::golden();
    let timings: Vec<CornerTiming> = timer.analyze_all(tree, lib);
    let arcs = ArcSet::extract(tree);
    let arc_d: Vec<Vec<f64>> = timings
        .iter()
        .map(|t| arc_delays_ps(tree, &arcs, t))
        .collect();
    let n_corners = lib.corner_count();
    let all_pairs = tree.sink_pairs().to_vec();
    let per_corner_skews: Vec<Vec<f64>> =
        timings.iter().map(|t| pair_skews(t, &all_pairs)).collect();
    let alphas = alpha_factors(&per_corner_skews);
    let before_report = variation_report(&per_corner_skews, &alphas, None);
    let mut order: Vec<usize> = (0..all_pairs.len()).collect();
    order.sort_by(|&a, &b| before_report.per_pair[b].total_cmp(&before_report.per_pair[a]));
    order.truncate(cfg.max_pairs);
    let sel_pairs: Vec<SinkPair> = order.iter().map(|&i| all_pairs[i]).collect();
    let sel_sum: f64 = order.iter().map(|&i| before_report.per_pair[i]).sum();

    let mut path_of: BTreeMap<NodeId, Vec<ArcId>> = BTreeMap::new();
    let mut involved_set: HashSet<ArcId> = HashSet::new();
    for p in &sel_pairs {
        for s in [p.a, p.b] {
            let path = path_of
                .entry(s)
                .or_insert_with(|| arcs.path_arcs(tree, s))
                .clone();
            involved_set.extend(path);
        }
    }
    let mut involved: Vec<ArcId> = involved_set.into_iter().collect();
    involved.sort_unstable();
    let bounds: Vec<Option<RatioBounds>> = (0..n_corners)
        .map(|k| {
            (k != 0).then(|| {
                fit_ratio_bounds(
                    &ratio_scatter(luts, CornerId(k), CornerId(0)),
                    cfg.ratio_margin,
                )
            })
        })
        .collect();

    // lower end of the sweep: the unconstrained ΣV optimum
    let floor = build_and_solve(
        tree,
        lib,
        luts,
        &arcs,
        &arc_d,
        &timings,
        &sel_pairs,
        &path_of,
        &involved,
        &alphas,
        &bounds,
        LpObjective::Scalarized(1e-6),
        cfg,
    )
    .map_or(0.0, |(sol, _)| sol.objective.max(0.0));

    let mut out = Vec::with_capacity(n_points);
    for i in 0..n_points.max(2) {
        // geometric interpolation between sel_sum and max(floor, 1e-3)
        let lo = floor.max(1.0e-3);
        let t = i as f64 / (n_points.max(2) - 1) as f64;
        let u = sel_sum.max(lo) * (lo / sel_sum.max(lo)).powf(t);
        match build_and_solve(
            tree,
            lib,
            luts,
            &arcs,
            &arc_d,
            &timings,
            &sel_pairs,
            &path_of,
            &involved,
            &alphas,
            &bounds,
            LpObjective::UBound(u),
            cfg,
        ) {
            Some((sol, vars)) => {
                let total_delta: f64 = vars
                    .values()
                    .flat_map(|av| av.delta.iter())
                    .map(|&(p, n)| {
                        sol.value(p).unwrap_or(f64::NAN) + sol.value(n).unwrap_or(f64::NAN)
                    })
                    .sum();
                out.push(USweepPoint {
                    u,
                    total_delta,
                    sum_v: f64::NAN, // ΣV is slack-bounded; report the bound
                    feasible: true,
                });
            }
            None => out.push(USweepPoint {
                u,
                total_delta: f64::NAN,
                sum_v: f64::NAN,
                feasible: false,
            }),
        }
    }
    out
}

fn end_load_ff(tree: &ClockTree, lib: &Library, arc: &Arc) -> f64 {
    match tree.node(arc.to).kind {
        NodeKind::Buffer(c) => lib.cell(c).input_cap_ff,
        NodeKind::Sink => lib.sink_cap_ff(),
        NodeKind::Source => 0.0,
    }
}

/// Algorithm 1, applied incrementally: arcs are rebuilt in decreasing
/// order of requested |Δ| and each rebuild must survive a golden-timer
/// check (variation improves, local skew stays within the guard) or it is
/// rolled back. This is the robust counterpart of the paper's batch ECO:
/// the commercial router/placer of the original flow realizes delays much
/// more faithfully than an open-source ECO stack can, so per-arc
/// verification replaces that fidelity (DESIGN.md §4).
///
/// Returns (arcs kept, final variation sum).
#[allow(clippy::too_many_arguments)]
fn execute_eco(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    arcs: &ArcSet,
    arc_d: &[Vec<f64>],
    timings: &[CornerTiming],
    involved: &[ArcId],
    vars: &BTreeMap<ArcId, ArcVars>,
    sol: &Solution,
    all_pairs: &[SinkPair],
    alphas: &[f64],
    guard_local: &[f64],
    variation_before: f64,
    cfg: &GlobalConfig,
    obs: &Obs,
    deadline: &Deadline,
    round: usize,
    lambda: f64,
    star: Option<&[f64]>,
    star_before: Option<f64>,
) -> (usize, f64, Option<f64>) {
    let n_corners = arc_d.len();
    let timer = Timer::golden();
    // collect candidate arcs with their requested deltas
    let mut todo: Vec<(f64, ArcId, Vec<f64>)> = Vec::new();
    for &aid in involved {
        let av = &vars[&aid];
        let deltas: Vec<f64> = (0..n_corners)
            .map(|k| {
                let (pos, neg) = av.delta[k];
                sol.value(pos).unwrap_or(f64::NAN) - sol.value(neg).unwrap_or(f64::NAN)
            })
            .collect();
        let worst = deltas.iter().map(|d| d.abs()).fold(0.0, f64::max);
        if worst >= cfg.delta_threshold_ps {
            todo.push((worst, aid, deltas));
        }
    }
    todo.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut eco_span = obs.span_at(
        Level::Debug,
        "global.eco",
        vec![kv("arcs_todo", todo.len() as u64)],
    );
    let mut changed = 0usize;
    let mut current = variation_before;
    let mut current_star = star_before;
    // the paper's guarantee: no new max-cap / max-transition violations
    let mut drc_budget: usize = timer
        .analyze_all(tree, lib)
        .iter()
        .map(|t| t.violations().len())
        .sum();
    for (_, aid, deltas) in todo {
        // cut mid-ECO: every accepted arc left the trial timed and
        // consistent, so stopping here yields a valid partial trial
        if deadline.expired() {
            obs.count("global.eco_interrupted", 1);
            break;
        }
        let arc = arcs.arc(aid).clone();
        // the arc set was extracted from the original tree; skip arcs whose
        // neighbourhood a previous accepted rebuild restructured
        if !arc_is_current(tree, &arc) {
            continue;
        }
        let d_lp: Vec<f64> = (0..n_corners)
            .map(|k| arc_d[k][aid.0 as usize] + deltas[k])
            .collect();
        let d_now: Vec<f64> = (0..n_corners).map(|k| arc_d[k][aid.0 as usize]).collect();
        let backup = tree.clone();
        if !realize_arc(tree, lib, fp, luts, timings, &arc, &d_lp, &d_now, cfg, obs) {
            *tree = backup;
            obs.count("global.eco_unrealizable", 1);
            if obs.ledgering() {
                obs.ledger_append(LedgerRecord::EcoArc {
                    round: round as u64,
                    lambda,
                    arc: u64::from(aid.0),
                    d_lp: d_lp.clone(),
                    d_now: d_now.clone(),
                    realized: None,
                    accepted: false,
                    var: None,
                });
            }
            continue;
        }
        // golden re-timing: fidelity of the realized arc delta vs the LP
        // target, plus the variation / local-skew effect
        let t_after: Vec<CornerTiming> = timer.analyze_all(tree, lib);
        let realized: Vec<f64> = t_after
            .iter()
            .map(|t| t.arrival_ps(arc.to) - t.arrival_ps(arc.from))
            .collect();
        let mut fid_err = 0.0;
        let mut target_norm = 0.0;
        for k in 0..n_corners {
            fid_err += (realized[k] - d_lp[k]).abs();
            target_norm += (d_lp[k] - d_now[k]).abs();
            for k2 in (k + 1)..n_corners {
                fid_err += ((realized[k] - realized[k2]) - (d_lp[k] - d_lp[k2])).abs();
            }
        }
        let fid_ok =
            fid_err <= cfg.fidelity_tol_frac * target_norm + cfg.fidelity_tol_ps * n_corners as f64;
        if obs.at(Level::Trace) {
            let round1 = |v: &[f64]| {
                format!(
                    "{:?}",
                    v.iter()
                        .map(|x| (x * 10.0).round() / 10.0)
                        .collect::<Vec<_>>()
                )
            };
            obs.event(
                Level::Trace,
                "eco.arc",
                vec![
                    kv("arc", aid.to_string()),
                    kv("now_ps", round1(&d_now)),
                    kv("target_ps", round1(&d_lp)),
                    kv("realized_ps", round1(&realized)),
                    kv("fid_err", fid_err),
                    kv("fid_ok", fid_ok),
                ],
            );
        }
        let skews: Vec<Vec<f64>> = t_after.iter().map(|t| pair_skews(t, all_pairs)).collect();
        let after = variation_report(&skews, alphas, None).sum;
        let guard_ok = skews
            .iter()
            .zip(guard_local)
            .all(|(s, &g)| local_skew_ps(s) <= g * cfg.skew_guard_factor + cfg.skew_guard_ps);
        let drc: usize = t_after.iter().map(|t| t.violations().len()).sum();
        let accepted = guard_ok && drc <= drc_budget && (after < current || fid_ok);
        // the star checkpoint re-prices the same measured skews under
        // the flow's α*, so the extra cost when ledgering is one
        // variation_report — no additional STA
        let after_star = star.map(|sa| variation_report(&skews, sa, None).sum);
        if accepted {
            drc_budget = drc;
            current = after;
            current_star = after_star;
            changed += 1;
            obs.count("global.eco_accepted", 1);
        } else {
            *tree = backup;
            obs.count("global.eco_rollback", 1);
        }
        if obs.ledgering() {
            obs.ledger_append(LedgerRecord::EcoArc {
                round: round as u64,
                lambda,
                arc: u64::from(aid.0),
                d_lp: d_lp.clone(),
                d_now: d_now.clone(),
                realized: Some(realized.clone()),
                accepted,
                var: if accepted { after_star } else { None },
            });
        }
    }
    eco_span.record("arcs_kept", changed as u64);
    drop(eco_span);
    (changed, current, current_star)
}

/// Whether `arc` still describes the live chain between its junctions.
pub(crate) fn arc_is_current(tree: &ClockTree, arc: &Arc) -> bool {
    if !tree.is_alive(arc.from) || !tree.is_alive(arc.to) {
        return false;
    }
    let Some(mut cur) = tree.parent(arc.to) else {
        return false;
    };
    for &n in arc.interior.iter().rev() {
        if !tree.is_alive(n) || cur != n {
            return false;
        }
        cur = match tree.parent(n) {
            Some(p) => p,
            None => return false,
        };
    }
    cur == arc.from
}

/// Algorithm 1, lines 3–19, for one arc: pick (size p, spacing q, pair
/// count u) minimizing the multi-corner error against `d_lp`, then rebuild
/// the chain with legalized placement and exact detour routing.
///
/// Candidate delays are **anchored**: the score uses
/// `d_now + (est(candidate) − est(current config))`, so the systematic
/// part of the LUT-vs-golden modelling error cancels and only the *change*
/// must be estimated accurately.
/// Baseline-facing wrapper around [`realize_arc`] with default ECO knobs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn realize_arc_for_baseline(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    timings: &[CornerTiming],
    arc: &Arc,
    d_lp: &[f64],
    d_now: &[f64],
) -> bool {
    realize_arc(
        tree,
        lib,
        fp,
        luts,
        timings,
        arc,
        d_lp,
        d_now,
        &GlobalConfig::default(),
        &Obs::disabled(),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn realize_arc(
    tree: &mut ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    timings: &[CornerTiming],
    arc: &Arc,
    d_lp: &[f64],
    d_now: &[f64],
    cfg: &GlobalConfig,
    obs: &Obs,
) -> bool {
    let n_corners = d_lp.len();
    let from_loc = tree.loc(arc.from);
    let to_loc = tree.loc(arc.to);
    let span = from_loc.manhattan_um(to_loc).max(1.0);
    let drv = tree.cell(arc.from).unwrap_or(CellId(0));
    let end_load = end_load_ff(tree, lib, arc);
    let slews: Vec<f64> = (0..n_corners)
        .map(|k| timings[k].slew_ps(arc.from))
        .collect();

    let est = |p: CellId, q: f64, n_inv: usize, k: usize| -> f64 {
        luts.arc_delay_estimate(lib, CornerId(k), drv, slews[k], p, q, n_inv, end_load)
    };

    // estimate of the arc as it stands, for anchoring
    let cur_n = arc.interior.len();
    let cur_len = arc.length_um(tree).max(1.0);
    let cur_q = cur_len / (cur_n + 1) as f64;
    let cur_size = arc
        .interior
        .first()
        .and_then(|&n| tree.cell(n))
        .unwrap_or(drv);
    let est_cur: Vec<f64> = (0..n_corners)
        .map(|k| est(cur_size, cur_q, cur_n, k))
        .collect();

    // Scoring: Algorithm 1's multi-corner error, plus an uncertainty
    // penalty proportional to how far (in estimated delay) a candidate
    // strays from the current configuration — the LUT estimate of a
    // *large* reconfiguration carries proportionally large model error,
    // and an unpenalized search happily exploits that noise.
    let mut best: Option<(f64, CellId, f64, usize)> = None; // (score, size, q, n_inv)
    let mut consider = |p: CellId, q: f64, n_inv: usize| {
        let route_len = (n_inv + 1) as f64 * q;
        if route_len < span * 0.999 || route_len > span + cfg.max_detour_um {
            return;
        }
        let d_est: Vec<f64> = (0..n_corners)
            .map(|k| d_now[k] + est(p, q, n_inv, k) - est_cur[k])
            .collect();
        let mut err = 0.0;
        let mut distance = 0.0;
        for k in 0..n_corners {
            err += (d_est[k] - d_lp[k]).abs();
            distance += (d_est[k] - d_now[k]).abs();
        }
        for k in 0..n_corners {
            for k2 in (k + 1)..n_corners {
                err += ((d_est[k] - d_est[k2]) - (d_lp[k] - d_lp[k2])).abs();
            }
        }
        let score = err + cfg.eco_uncertainty_frac * distance;
        if best.as_ref().is_none_or(|&(e, ..)| score < e) {
            best = Some((score, p, q, n_inv));
        }
    };

    // Clock polarity: the rebuilt chain must keep the inversion parity of
    // the chain it replaces (the paper's trees are built purely of
    // inverter *pairs*, so there parity is trivially even; our junctions
    // sit on pair-internal inverters, so odd interiors occur).
    let parity = cur_n % 2;
    // Inverter counts worth trying: around the current count and around
    // Algorithm 1's `u_est ± 2` estimate at a mid-table spacing.
    let mut counts: Vec<usize> = Vec::new();
    {
        let mut push = |n: i64| {
            if n >= parity as i64 && (n as usize) % 2 == parity {
                let n = n as usize;
                if !counts.contains(&n) {
                    counts.push(n);
                }
            }
        };
        for d in -4i64..=4 {
            push(cur_n as i64 + 2 * d);
        }
        let stage = luts
            .stage_delay(CornerId(0), cur_size, cur_q.clamp(10.0, 200.0))
            .max(1e-6);
        let u_est = (d_lp[0] / (2.0 * stage)).round() as i64;
        for d in -2i64..=2 {
            push(2 * (u_est + d) + parity as i64);
        }
    }
    for size in 0..lib.cells().len() {
        let p = CellId(size);
        for &n_inv in &counts {
            if n_inv == 0 {
                // wire-only: route length is the only knob
                for detour_frac in [1.0, 1.05, 1.15, 1.3] {
                    consider(p, span * detour_frac, 0);
                }
                continue;
            }
            // continuous spacing: bisect q so the c0 estimate hits the
            // target (the stage LUT interpolates between its 5 µm grid)
            let segs = (n_inv + 1) as f64;
            let q_lo = (span / segs).max(2.0);
            let q_hi = (span + cfg.max_detour_um) / segs;
            if q_hi < q_lo {
                continue;
            }
            let target0 = d_lp[0];
            let e_lo = d_now[0] + est(p, q_lo, n_inv, 0) - est_cur[0];
            let e_hi = d_now[0] + est(p, q_hi, n_inv, 0) - est_cur[0];
            let q_star = if e_lo >= target0 {
                q_lo
            } else if e_hi <= target0 {
                q_hi
            } else {
                let (mut a, mut b) = (q_lo, q_hi);
                for _ in 0..30 {
                    let m = 0.5 * (a + b);
                    let e = d_now[0] + est(p, m, n_inv, 0) - est_cur[0];
                    if e < target0 {
                        a = m;
                    } else {
                        b = m;
                    }
                }
                0.5 * (a + b)
            };
            consider(p, q_star, n_inv);
            // also the no-detour point, which Algorithm 1's D_min favours
            consider(p, q_lo, n_inv);
        }
    }

    let Some((best_err, size, q, n_inv)) = best else {
        return false;
    };
    if obs.at(Level::Trace) {
        obs.event(
            Level::Trace,
            "eco.realize",
            vec![
                kv("cur", format!("size {cur_size:?}, q {cur_q:.1}, n {cur_n}")),
                kv("chosen", format!("size {size:?}, q {q:.1}, n {n_inv}")),
                kv("span_um", span),
                kv("len_um", cur_len),
                kv("est_err", best_err),
            ],
        );
    }
    let route_len = (n_inv + 1) as f64 * q;
    let path = if route_len > span * 1.01 {
        RoutePath::with_detour(from_loc, to_loc, route_len - span)
    } else {
        RoutePath::l_shape(from_loc, to_loc)
    };

    // tear out the old chain
    for &n in &arc.interior {
        tree.remove_buffer(n).expect("interior nodes are buffers");
    }
    // insert the new chain with legalized positions and detour-preserving
    // route pieces
    let total = path.length_dbu();
    let mut prev = arc.from;
    let mut prev_d = 0i64;
    let mut prev_loc = from_loc;
    for i in 1..=n_inv {
        let d = total * i as i64 / (n_inv as i64 + 1);
        let ideal = path.locate(d);
        let legal = fp.legalize(ideal);
        let piece = chain_piece(&path, prev_d, d, prev_loc, legal);
        prev = tree
            .add_node_with_route(NodeKind::Buffer(size), legal, prev, piece)
            .expect("chain piece endpoints match");
        prev_d = d;
        prev_loc = legal;
    }
    if prev != arc.from {
        tree.set_parent(arc.to, prev).expect("no cycles in a chain");
    }
    let last = chain_piece(&path, prev_d, total, prev_loc, to_loc);
    tree.set_route(arc.to, last).expect("endpoints match");
    true
}

/// A route piece following `path` between distances `d0..d1`, with small
/// L-shape jogs patched on both ends to reach the legalized locations.
fn chain_piece(
    path: &RoutePath,
    d0: i64,
    d1: i64,
    start_actual: clk_geom::Point,
    end_actual: clk_geom::Point,
) -> RoutePath {
    let mut piece = path.sub_path(d0, d1);
    if piece.start() != start_actual {
        piece = RoutePath::l_shape(start_actual, piece.start()).join(&piece);
    }
    if piece.end() != end_actual {
        piece = piece.join(&RoutePath::l_shape(piece.end(), end_actual));
    }
    piece
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_cts::{Testcase, TestcaseKind};

    fn quick_cfg() -> GlobalConfig {
        GlobalConfig {
            max_pairs: 40,
            lambdas: vec![0.05, 0.3],
            rounds: 2,
            ..GlobalConfig::default()
        }
    }

    #[test]
    fn global_reduces_variation_on_cls1() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 5);
        let luts = StageLuts::characterize(&tc.lib);
        let (opt, report) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &quick_cfg());
        opt.validate().unwrap();
        assert!(
            report.variation_after <= report.variation_before,
            "variation {} -> {}",
            report.variation_before,
            report.variation_after
        );
        // must really have done something on a CTS'd tree
        assert!(report.variation_before > 0.0);
    }

    #[test]
    fn injected_lp_and_model_faults_are_absorbed() {
        use crate::fault::FaultPlan;
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 5);
        let luts = StageLuts::characterize(&tc.lib);
        let plan = FaultPlan::inert(3);
        plan.arm(FaultSite::NanArcDelay, 0, 1);
        plan.arm(FaultSite::CorruptLutRow, 0, 1);
        plan.arm(FaultSite::InfeasibleLp, 0, 1);
        let mut ctx = FaultCtx::new(Some(&plan), Deadline::none());
        let (opt, report) = global_optimize_checked(
            &tc.tree,
            &tc.lib,
            &tc.floorplan,
            &luts,
            &quick_cfg(),
            None,
            &mut ctx,
            &PhaseBudget::unlimited(),
        )
        .expect("flow survives injected faults");
        opt.validate().unwrap();
        assert!(report.variation_after <= report.variation_before);
        assert_eq!(plan.injected().len(), 3, "all three armed sites fired");
        assert_eq!(ctx.log.of_kind(FaultKind::NanArcDelay).count(), 1);
        assert_eq!(ctx.log.of_kind(FaultKind::CorruptDelayModel).count(), 1);
        assert!(
            ctx.log.of_kind(FaultKind::LpFailure).count() >= 1,
            "the infeasible solve must show up in the log:\n{}",
            ctx.log.to_text()
        );
    }

    #[test]
    fn u_sweep_traces_a_monotone_frontier() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 40, 7);
        let luts = StageLuts::characterize(&tc.lib);
        let cfg = GlobalConfig {
            max_pairs: 25,
            ..GlobalConfig::default()
        };
        let curve = u_sweep(&tc.tree, &tc.lib, &luts, &cfg, 5);
        assert_eq!(curve.len(), 5);
        // U = current sum must be feasible at (near) zero delta spend
        let first = &curve[0];
        assert!(first.feasible);
        assert!(first.total_delta < 1.0, "delta {}", first.total_delta);
        // tighter U never needs less delta (Pareto monotonicity)
        let mut last = -1.0;
        for p in curve.iter().filter(|p| p.feasible) {
            assert!(
                p.total_delta >= last - 1e-6,
                "frontier not monotone: {curve:?}"
            );
            last = p.total_delta;
        }
    }

    #[test]
    fn local_skew_never_degrades_past_guard() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 6);
        let luts = StageLuts::characterize(&tc.lib);
        let cfg = quick_cfg();
        let timer = Timer::golden();
        let before: Vec<f64> = tc
            .lib
            .corner_ids()
            .map(|c| {
                local_skew_ps(&pair_skews(
                    &timer.analyze(&tc.tree, &tc.lib, c),
                    tc.tree.sink_pairs(),
                ))
            })
            .collect();
        let (opt, _) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &cfg);
        for (k, c) in tc.lib.corner_ids().enumerate() {
            let after = local_skew_ps(&pair_skews(
                &timer.analyze(&opt, &tc.lib, c),
                opt.sink_pairs(),
            ));
            assert!(
                after <= before[k] * cfg.skew_guard_factor + cfg.skew_guard_ps,
                "corner {k}: {} -> {after}",
                before[k]
            );
        }
    }
}
