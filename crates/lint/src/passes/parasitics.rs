//! `R0xx` — parasitic audits: the extracted RC tree of every net must
//! match its route geometry, carry nonnegative finite R/C, and survive a
//! SPEF write/read-back round trip.

use clk_delay::RcTree;
use clk_liberty::CornerId;
use clk_netlist::{ClockTree, NodeId, NodeKind};
use clk_route::WireTree;

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Locus};
use crate::runner::LintPass;

/// `R002` — audits one RC tree for nonnegative, finite resistance and
/// capacitance at every node. `driver` anchors the diagnostics.
///
/// Public so corruption tests can audit synthetic [`RcTree`]s built with
/// `RcTree::from_raw`.
pub fn audit_rc_tree(driver: NodeId, rc: &RcTree) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..rc.node_count() {
        let r = rc.res_kohm(i);
        let c = rc.cap_ff(i);
        if !r.is_finite() || r < 0.0 {
            out.push(Diagnostic::error(
                "R002",
                Locus::Node(driver),
                format!("net of {driver}: RC node {i} has bad resistance {r} kohm"),
            ));
        }
        if !c.is_finite() || c < 0.0 {
            out.push(Diagnostic::error(
                "R002",
                Locus::Node(driver),
                format!("net of {driver}: RC node {i} has bad capacitance {c} fF"),
            ));
        }
    }
    out
}

/// Extracts the fanout net of `driver` exactly like the timer does.
/// Returns `None` when a child has no route (the route-geometry pass
/// reports that as `G004`).
fn extract_net(ctx: &DesignCtx, driver: NodeId, seg_max_um: f64) -> Option<(RcTree, f64, f64)> {
    let tree = ctx.tree;
    let children = tree.children(driver);
    let mut wt = WireTree::new(tree.loc(driver));
    let mut loads = Vec::with_capacity(children.len());
    let mut route_len_um = 0.0;
    let mut pin_cap_ff = 0.0;
    for &c in children {
        let route = tree.node(c).route.as_ref()?;
        route_len_um += route.length_um();
        let mut prev = WireTree::ROOT;
        for &p in &route.points()[1..] {
            prev = wt.add_child(prev, p);
        }
        let pin_cap = match tree.node(c).kind {
            NodeKind::Buffer(cc) => ctx.lib.cell(cc).input_cap_ff,
            NodeKind::Sink => ctx.lib.sink_cap_ff(),
            NodeKind::Source => return None,
        };
        pin_cap_ff += pin_cap;
        loads.push((prev, pin_cap));
    }
    let wire_rc = ctx.lib.wire_rc(CornerId(0));
    Some((
        RcTree::extract(&wt, wire_rc, &loads, seg_max_um),
        route_len_um,
        pin_cap_ff,
    ))
}

fn drivers(tree: &ClockTree) -> impl Iterator<Item = NodeId> + '_ {
    tree.node_ids().filter(|&d| !tree.children(d).is_empty())
}

/// The parasitic-consistency audit pass: `R001` extracted totals diverge
/// from the route geometry, `R002` negative or non-finite R/C.
pub struct ParasiticsPass;

impl LintPass for ParasiticsPass {
    fn name(&self) -> &'static str {
        "parasitics"
    }

    fn description(&self) -> &'static str {
        "per-net RC extraction matches route geometry with nonnegative finite R/C"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        if !ctx.structurally_sound() {
            return;
        }
        let wire_rc = ctx.lib.wire_rc(CornerId(0));
        for d in drivers(ctx.tree) {
            let Some((rc, route_len_um, pin_cap_ff)) = extract_net(ctx, d, 5.0) else {
                continue;
            };
            out.extend(audit_rc_tree(d, &rc));
            let want_r: f64 = wire_rc.r_per_um * route_len_um;
            let got_r: f64 = (0..rc.node_count()).map(|i| rc.res_kohm(i)).sum();
            let want_c = wire_rc.c_per_um * route_len_um;
            let got_c = rc.total_cap_ff() - pin_cap_ff;
            let tol = 1e-6;
            if (got_r - want_r).abs() > tol * want_r.max(1.0) {
                out.push(Diagnostic::error(
                    "R001",
                    Locus::Node(d),
                    format!("net of {d}: extracted R {got_r:.6} kohm but routes imply {want_r:.6}"),
                ));
            }
            if (got_c - want_c).abs() > tol * want_c.max(1.0) {
                out.push(Diagnostic::error(
                    "R001",
                    Locus::Node(d),
                    format!(
                        "net of {d}: extracted wire C {got_c:.6} fF but routes imply {want_c:.6}"
                    ),
                ));
            }
        }
    }
}

/// The SPEF round-trip audit pass: `R003` — writing a net to SPEF and
/// summing the `*CAP`/`*RES` sections back must reproduce the extracted
/// totals (and one resistor per non-root RC node).
pub struct SpefRoundTripPass;

impl LintPass for SpefRoundTripPass {
    fn name(&self) -> &'static str {
        "spef-round-trip"
    }

    fn description(&self) -> &'static str {
        "SPEF output reproduces extracted RC totals on read-back"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        if !ctx.structurally_sound() {
            return;
        }
        for d in drivers(ctx.tree) {
            // lumped extraction: small, and totals are what SPEF carries
            let Some((rc, _, _)) = extract_net(ctx, d, 1e9) else {
                continue;
            };
            let spef = clk_delay::spef::write_spef(&format!("net_{}", d.0), &rc);
            let parsed = parse_spef_totals(&spef);
            // %.6 fixed-point rounding: half an ulp per printed entry
            let tol = 1e-6 * rc.node_count() as f64 + 1e-9;
            if (parsed.cap_sum - rc.total_cap_ff()).abs() > tol {
                out.push(Diagnostic::error(
                    "R003",
                    Locus::Node(d),
                    format!(
                        "net of {d}: SPEF caps sum to {:.6} fF, extraction has {:.6}",
                        parsed.cap_sum,
                        rc.total_cap_ff()
                    ),
                ));
            }
            if (parsed.d_net_total - rc.total_cap_ff()).abs() > tol {
                out.push(Diagnostic::error(
                    "R003",
                    Locus::Node(d),
                    format!(
                        "net of {d}: *D_NET total {:.6} fF disagrees with extraction {:.6}",
                        parsed.d_net_total,
                        rc.total_cap_ff()
                    ),
                ));
            }
            if parsed.res_count != rc.node_count() - 1 {
                out.push(Diagnostic::error(
                    "R003",
                    Locus::Node(d),
                    format!(
                        "net of {d}: SPEF has {} resistors for {} RC nodes",
                        parsed.res_count,
                        rc.node_count()
                    ),
                ));
            }
        }
    }
}

struct SpefTotals {
    d_net_total: f64,
    cap_sum: f64,
    res_count: usize,
}

fn parse_spef_totals(spef: &str) -> SpefTotals {
    let mut totals = SpefTotals {
        d_net_total: f64::NAN,
        cap_sum: 0.0,
        res_count: 0,
    };
    #[derive(PartialEq)]
    enum Sect {
        None,
        Cap,
        Res,
    }
    let mut sect = Sect::None;
    for line in spef.lines() {
        if line.starts_with("*D_NET") {
            totals.d_net_total = line
                .split_whitespace()
                .nth(2)
                .and_then(|f| f.parse().ok())
                .unwrap_or(f64::NAN);
        } else if line.starts_with("*CAP") {
            sect = Sect::Cap;
        } else if line.starts_with("*RES") {
            sect = Sect::Res;
        } else if line.starts_with('*') {
            sect = Sect::None;
        } else if !line.trim().is_empty() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match sect {
                Sect::Cap => {
                    if let Some(v) = fields.last().and_then(|f| f.parse::<f64>().ok()) {
                        totals.cap_sum += v;
                    }
                }
                Sect::Res => totals.res_count += 1,
                Sect::None => {}
            }
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{Library, StdCorners};

    fn fixture() -> (Library, ClockTree) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x8);
        let b = tree.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), tree.root());
        tree.add_node(NodeKind::Sink, Point::new(120_000, 30_000), b);
        tree.add_node(NodeKind::Sink, Point::new(120_000, -20_000), b);
        (lib, tree)
    }

    #[test]
    fn clean_nets_pass_both_audits() {
        let (lib, tree) = fixture();
        let ctx = DesignCtx::new(&tree, &lib);
        let mut out = Vec::new();
        ParasiticsPass.run(&ctx, &mut out);
        SpefRoundTripPass.run(&ctx, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn negative_cap_is_r002() {
        let rc = RcTree::from_raw(vec![None, Some(0)], vec![0.0, 1.0], vec![0.5, -3.0]);
        let out = audit_rc_tree(NodeId(7), &rc);
        assert!(out.iter().any(|d| d.code == "R002"), "{out:?}");
    }

    #[test]
    fn nan_resistance_is_r002() {
        let rc = RcTree::from_raw(vec![None, Some(0)], vec![0.0, f64::NAN], vec![0.5, 3.0]);
        let out = audit_rc_tree(NodeId(7), &rc);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "R002");
    }

    #[test]
    fn spef_parser_reads_the_writer() {
        let rc = RcTree::from_raw(
            vec![None, Some(0), Some(1)],
            vec![0.0, 0.5, 0.25],
            vec![0.1, 2.0, 3.5],
        );
        let totals = parse_spef_totals(&clk_delay::spef::write_spef("n1", &rc));
        assert!((totals.cap_sum - rc.total_cap_ff()).abs() < 1e-6);
        assert!((totals.d_net_total - rc.total_cap_ff()).abs() < 1e-6);
        assert_eq!(totals.res_count, 2);
    }
}
