//! Instrumented smoke flow: runs the global-local flow with the `clk-obs`
//! pipeline at Debug verbosity into an in-memory JSONL buffer, then parses
//! the stream back and renders a per-phase / per-round summary table.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin obs-report -- --quick --seed 2015 \
//!     [--out trace.jsonl] [--trace-out trace.json] [--tile-tol PCT]
//! ```
//!
//! Exit code 0 only when the trace is structurally complete: every line
//! parses, every flow phase / global round / local batch has a span, the
//! per-phase wall-clock totals tile the flow span within `--tile-tol`
//! percent (default 5; CI passes a looser value since a loaded machine
//! can stall between spans), and every absorbed fault in
//! `OptReport::faults` has a matching JSONL fault event. `--trace-out`
//! additionally exports the stream as Chrome trace-event JSON for
//! `about://tracing` / Perfetto.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::collections::HashMap;
use std::process::ExitCode;

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_obs::{json, Level, Obs, ObsConfig, SharedBuf, Value};
use clk_skewopt::{try_optimize, Flow};

/// One parsed JSONL record, keyed by the fields obs-report joins on.
struct Rec {
    kind: String,
    name: String,
    span: Option<u64>,
    parent: Option<u64>,
    elapsed_ms: Option<f64>,
    value: Value,
}

fn field_f64(v: &Value, key: &str) -> Option<f64> {
    v.get("fields")
        .and_then(|f| f.get(key))
        .and_then(Value::as_f64)
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get("fields")
        .and_then(|f| f.get(key))
        .and_then(Value::as_str)
}

fn main() -> ExitCode {
    let args = ExpArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let out_path = flag_val("--out");
    let trace_out = flag_val("--trace-out");
    // phase-tiling tolerance, percent; a hard-coded 5% flakes on loaded
    // CI machines, so the workflow passes a looser bound
    let tile_tol = flag_val("--tile-tol")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0)
        / 100.0;
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 120 });
    let seed = args.seed;

    let obs = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);

    let mut cfg = clockvar_workbench::quick_flow_config();
    cfg.obs = obs.clone();

    println!("obs-report: seed {seed}, {n} sinks, flow global-local, verbosity debug");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, seed);
    let sw = Stopwatch::start("obs-report");
    let report = match try_optimize(&tc, Flow::GlobalLocal, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: instrumented flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    sw.report();
    obs.emit_metrics();
    obs.flush();

    let text = buf.contents();
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("FAIL: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace written to {path}");
    }
    if let Some(path) = &trace_out {
        match clk_obs::chrome::chrome_trace_from_jsonl(&text) {
            Ok(doc) => {
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("FAIL: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("chrome trace written to {path} (load at ui.perfetto.dev)");
            }
            Err(e) => {
                eprintln!("FAIL: chrome trace conversion: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // ---- parse the stream back through the same JSON module ----
    let mut recs: Vec<Rec> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL: line {} does not parse: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        recs.push(Rec {
            kind: v.get("t").and_then(Value::as_str).unwrap_or("").to_string(),
            name: v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            span: v.get("span").and_then(Value::as_u64),
            parent: v.get("parent").and_then(Value::as_u64),
            elapsed_ms: v.get("elapsed_ms").and_then(Value::as_f64),
            value: v,
        });
    }
    println!("parsed {} JSONL records", recs.len());

    // span_start fields by span id (round index, lambda, batch index live
    // on the start record; durations and outcomes on the end record)
    let starts: HashMap<u64, &Rec> = recs
        .iter()
        .filter(|r| r.kind == "span_start")
        .filter_map(|r| r.span.map(|id| (id, r)))
        .collect();
    let ends: Vec<&Rec> = recs.iter().filter(|r| r.kind == "span_end").collect();
    let end_of = |name: &str| -> Vec<&&Rec> { ends.iter().filter(|r| r.name == name).collect() };

    let flow_ms = end_of("flow")
        .first()
        .and_then(|r| r.elapsed_ms)
        .unwrap_or(0.0);

    // ---- per-phase table ----
    println!("\nper-phase wall clock:");
    println!("{:<16} {:>10} {:>7}", "phase", "ms", "%flow");
    let mut phase_sum = 0.0;
    let mut phases_seen = 0usize;
    for phase in ["phase.init", "phase.global", "phase.local", "phase.scoring"] {
        let ms: f64 = end_of(phase).iter().filter_map(|r| r.elapsed_ms).sum();
        if !end_of(phase).is_empty() {
            phases_seen += 1;
        }
        phase_sum += ms;
        println!(
            "{:<16} {:>10.1} {:>6.1}%",
            phase,
            ms,
            if flow_ms > 0.0 {
                100.0 * ms / flow_ms
            } else {
                0.0
            }
        );
    }
    println!(
        "{:<16} {:>10.1} {:>6.1}%   (flow {flow_ms:.1} ms)",
        "(sum)",
        phase_sum,
        if flow_ms > 0.0 {
            100.0 * phase_sum / flow_ms
        } else {
            0.0
        }
    );

    // ---- per-round table ----
    println!("\nglobal rounds:");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>6} {:>9} {:>8}",
        "round", "ms", "var_before", "var_after", "arcs", "lp_iters", "lambdas"
    );
    let round_ends = end_of("global.round");
    for r in &round_ends {
        let idx = r
            .span
            .and_then(|id| starts.get(&id))
            .and_then(|s| field_f64(&s.value, "round"))
            .unwrap_or(-1.0);
        let lambdas = ends
            .iter()
            .filter(|e| e.name == "global.lambda" && e.parent == r.span)
            .count();
        println!(
            "{:>5} {:>10.1} {:>12.1} {:>12.1} {:>6} {:>9} {:>8}",
            idx as i64,
            r.elapsed_ms.unwrap_or(0.0),
            field_f64(&r.value, "variation_before").unwrap_or(f64::NAN),
            field_f64(&r.value, "variation_after").unwrap_or(f64::NAN),
            field_f64(&r.value, "arcs_changed").unwrap_or(0.0) as u64,
            field_f64(&r.value, "lp_iterations").unwrap_or(0.0) as u64,
            lambdas,
        );
    }

    // ---- local batches ----
    let batch_ends = end_of("local.batch");
    let iter_ends = end_of("local.iter");
    let accepted_batches = batch_ends
        .iter()
        .filter(|r| field_str(&r.value, "outcome") == Some("accepted"))
        .count();
    println!(
        "\nlocal phase: {} iterations, {} batches ({} accepted)",
        iter_ends.len(),
        batch_ends.len(),
        accepted_batches
    );

    // ---- selected metrics ----
    if let Some(m) = recs.iter().find(|r| r.kind == "metrics") {
        println!("\nmetrics:");
        for key in [
            "lp.solves",
            "lp.iters",
            "lp.pivots",
            "sta.analyzes",
            "global.rounds",
            "global.eco_accepted",
            "global.eco_rollback",
            "local.golden_evals",
            "local.accepted",
            "fault.absorbed",
        ] {
            if let Some(v) = m.value.get("fields").and_then(|f| f.get(key)) {
                println!("  {key:<24} {}", v.to_json());
            }
        }
    }

    // ---- predictor precision ----
    let predict_err = recs
        .iter()
        .find(|r| r.kind == "metrics")
        .and_then(|m| m.value.get("fields").cloned())
        .and_then(|f| f.get("local.predict.err_ps").cloned());
    if let Some(h) = &predict_err {
        println!("\npredictor precision (predicted − golden gain, ps):");
        for key in ["count", "mean", "p50", "p95", "min", "max"] {
            if let Some(v) = h.get(key) {
                println!("  {key:<6} {}", v.to_json());
            }
        }
    }

    // ---- structural checks ----
    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };

    println!();
    check(flow_ms > 0.0, "flow span closed with an elapsed time");
    check(phases_seen == 4, "all four flow phases have spans");
    let tile = (phase_sum - flow_ms).abs() / flow_ms.max(1e-9);
    check(
        tile <= tile_tol,
        &format!(
            "phase wall-clock tiles the flow span ({:.1}% off, tolerance {:.1}%)",
            100.0 * tile,
            100.0 * tile_tol
        ),
    );
    let rounds_reported = report
        .global_report
        .as_ref()
        .map_or(0, |g| g.sweep.len() / cfg.global.lambdas.len().max(1));
    check(
        !round_ends.is_empty() && round_ends.len() >= rounds_reported,
        &format!(
            "every global round has a span ({} spans, >= {} from the sweep)",
            round_ends.len(),
            rounds_reported
        ),
    );
    check(
        round_ends.iter().all(|r| {
            ends.iter()
                .any(|e| e.name == "global.lambda" && e.parent == r.span)
        }),
        "every global round contains lambda spans",
    );
    check(!iter_ends.is_empty(), "local phase has iteration spans");
    check(
        iter_ends.is_empty()
            || predict_err
                .as_ref()
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64)
                .is_some_and(|c| c > 0),
        "predictor error histogram (local.predict.err_ps) is populated",
    );
    let accepted_reported = report
        .local_report
        .as_ref()
        .map_or(0, |l| l.iterations.len());
    check(
        accepted_batches == accepted_reported,
        &format!(
            "accepted batch spans match the local report ({accepted_batches} == {accepted_reported})"
        ),
    );
    let fault_events: Vec<u64> = recs
        .iter()
        .filter(|r| r.kind == "fault")
        .filter_map(|r| field_f64(&r.value, "fault_seq").map(|s| s as u64))
        .collect();
    check(
        report
            .faults
            .records()
            .iter()
            .all(|f| fault_events.contains(&f.seq)),
        &format!(
            "all {} absorbed faults have matching JSONL fault events",
            report.faults.len()
        ),
    );

    if failed {
        ExitCode::FAILURE
    } else {
        println!("\nobs-report: all checks passed");
        ExitCode::SUCCESS
    }
}
