//! Edge-case coverage for the hand-rolled `clk_obs::json` parser:
//! escape sequences, deep nesting, and rejection of the non-JSON
//! number literals (`NaN` / `Infinity`) that `f64` formatting could
//! otherwise smuggle in.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_cmp)]

use clk_obs::json::{parse, Value};

#[test]
fn all_escape_sequences_round_trip() {
    let v = parse(r#""a\"b\\c\/d\ne\rf\tg\bh\fi""#).unwrap();
    assert_eq!(
        v.as_str(),
        Some("a\"b\\c/d\ne\rf\tg\u{8}h\u{c}i"),
        "every escape in the JSON grammar decodes"
    );
}

#[test]
fn unicode_escapes_decode_and_lone_surrogates_are_replaced() {
    assert_eq!(parse(r#""Aé☃""#).unwrap().as_str(), Some("Aé☃"));
    // control characters written by the sink as \u00XX come back intact
    let v = Value::Str("\u{1}\u{1f}".to_string());
    assert_eq!(parse(&v.to_json()).unwrap(), v);
    // a lone surrogate is not a char; the parser substitutes U+FFFD
    // rather than erroring out mid-stream
    assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
}

#[test]
fn rejects_malformed_escapes() {
    assert!(parse(r#""\q""#).is_err(), "unknown escape letter");
    assert!(parse(r#""\u12""#).is_err(), "truncated \\u escape");
    assert!(parse(r#""\u12zz""#).is_err(), "non-hex \\u escape");
    assert!(parse(r#""\"#).is_err(), "dangling backslash");
}

#[test]
fn deeply_nested_arrays_round_trip() {
    const DEPTH: usize = 300;
    let mut text = String::new();
    text.push_str(&"[".repeat(DEPTH));
    text.push('7');
    text.push_str(&"]".repeat(DEPTH));
    let mut v = parse(&text).unwrap();
    for _ in 0..DEPTH {
        let arr = v.as_arr().expect("still an array");
        assert_eq!(arr.len(), 1);
        v = arr[0].clone();
    }
    assert_eq!(v.as_f64(), Some(7.0));
}

#[test]
fn deeply_nested_objects_round_trip() {
    const DEPTH: usize = 200;
    let mut text = String::new();
    for _ in 0..DEPTH {
        text.push_str("{\"k\":");
    }
    text.push_str("true");
    text.push_str(&"}".repeat(DEPTH));
    let mut v = parse(&text).unwrap();
    for _ in 0..DEPTH {
        v = v.get("k").expect("key present").clone();
    }
    assert_eq!(v, Value::Bool(true));
}

#[test]
fn rejects_nan_and_infinity_literals() {
    for bad in [
        "NaN",
        "nan",
        "-NaN",
        "Infinity",
        "-Infinity",
        "inf",
        "-inf",
        "1e",
        "--1",
        "0x10",
        "1.2.3",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} must not parse");
        let wrapped = format!("{{\"v\":{bad}}}");
        assert!(parse(&wrapped).is_err(), "{wrapped:?} must not parse");
    }
    // the writer turns non-finite numbers into null, so a round trip
    // never produces those literals in the first place
    assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    assert_eq!(Value::Num(f64::NEG_INFINITY).to_json(), "null");
}

#[test]
fn number_edge_values_survive() {
    for n in [
        0.0,
        -0.0,
        1e-300,
        1e300,
        f64::MAX,
        f64::MIN_POSITIVE,
        -123456789.123456,
    ] {
        let text = Value::Num(n).to_json();
        let back = parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back, n, "{n} via {text}");
    }
}

#[test]
fn rejects_structural_garbage() {
    for bad in [
        "",
        "   ",
        "[1 2]",
        "{\"a\" 1}",
        "{\"a\":1,}",
        "[,1]",
        "{,}",
        "[1]]",
        "\u{7f}",
        "{\"a\":}",
        "tru",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} must not parse");
    }
}
