//! Dense linear algebra: just enough for kernel machines, backprop and
//! polynomial least squares.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Solves `self · x = b` by LU decomposition with partial pivoting.
    ///
    /// Returns `None` when the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics unless the matrix is square and `b.len() == rows`.
    pub fn lu_solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "lu_solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // pivot
            let (mut best, mut best_abs) = (col, a[perm[col] * n + col].abs());
            for r in (col + 1)..n {
                let v = a[perm[r] * n + col].abs();
                if v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
            if best_abs < 1e-12 {
                return None;
            }
            perm.swap(col, best);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &row in &perm[(col + 1)..] {
                let f = a[row * n + col] / pivot;
                if f == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[row * n + c] -= f * a[prow * n + c];
                }
                x[row] -= f * x[prow];
            }
        }
        // back substitution
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let row = perm[col];
            let mut v = x[row];
            for c in (col + 1)..n {
                v -= a[row * n + c] * out[c];
            }
            out[col] = v / a[row * n + col];
        }
        Some(out)
    }

    /// Solves a symmetric positive-definite system by Cholesky.
    ///
    /// Returns `None` when the matrix is not (numerically) SPD.
    ///
    /// # Panics
    ///
    /// Panics unless square with matching `b`.
    pub fn cholesky_solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        // forward then backward
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Least-squares fit of a degree-`degree` polynomial `y ≈ Σ c_k x^k`.
/// Returns coefficients lowest power first. Solves the (ridge-stabilized)
/// normal equations.
///
/// # Panics
///
/// Panics if `xs.len() != ys.len()` or fewer points than `degree + 1`.
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let k = degree + 1;
    assert!(xs.len() >= k, "need at least degree+1 points");
    // scale x into [-1, 1]-ish for conditioning
    let xmax = xs.iter().fold(1e-300f64, |a, &b| a.max(b.abs()));
    let mut ata = Matrix::zeros(k, k);
    let mut aty = vec![0.0; k];
    for (&x, &y) in xs.iter().zip(ys) {
        let xs_ = x / xmax;
        let mut pows = vec![1.0; k];
        for p in 1..k {
            pows[p] = pows[p - 1] * xs_;
        }
        for i in 0..k {
            aty[i] += pows[i] * y;
            for j in 0..k {
                ata[(i, j)] += pows[i] * pows[j];
            }
        }
    }
    for i in 0..k {
        ata[(i, i)] += 1e-10;
    }
    let c_scaled = ata
        .cholesky_solve(&aty)
        .or_else(|| ata.lu_solve(&aty))
        .expect("ridge-stabilized normal equations are solvable");
    // unscale: coefficient of x^p is c_p / xmax^p
    c_scaled
        .into_iter()
        .enumerate()
        .map(|(p, c)| c / xmax.powi(p as i32))
        .collect()
}

/// Evaluates a polynomial given coefficients lowest power first.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn matmul_and_matvec() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(1, 1)], 154.0);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let x = a.lu_solve(&[8.0, -11.0, -3.0]).unwrap();
        let want = [2.0, 3.0, -1.0];
        for (got, want) in x.iter().zip(want) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.lu_solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn cholesky_matches_lu_on_spd() {
        // SPD matrix A = MᵀM + I
        let m = Matrix::from_rows(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0]);
        let mut a = m.transpose().matmul(&m);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let b = [1.0, -2.0, 3.0];
        let x1 = a.cholesky_solve(&b).unwrap();
        let x2 = a.lu_solve(&b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(a.cholesky_solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn polyfit_recovers_exact_cubic() {
        let xs: Vec<f64> = (0..20).map(|i| f64::from(i) * 0.5).collect();
        let truth = [1.5, -2.0, 0.25, 0.125];
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&truth, x)).collect();
        let c = polyfit(&xs, &ys, 3);
        for (got, want) in c.iter().zip(truth) {
            assert!((got - want).abs() < 1e-6, "got {got} want {want}");
        }
    }

    #[test]
    fn polyfit_least_squares_beats_mean() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.1, 0.9, 2.1, 2.9];
        let c = polyfit(&xs, &ys, 1);
        let sse: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, y)| (polyval(&c, x) - y).powi(2))
            .sum();
        assert!(sse < 0.05);
    }

    #[test]
    fn polyval_constant() {
        assert_eq!(polyval(&[4.0], 100.0), 4.0);
        assert_eq!(polyval(&[], 1.0), 0.0);
    }
}
