//! PVT corners and the alpha-power-law delay physics behind them.

/// Process corner of the transistors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Process {
    /// Slow NMOS / slow PMOS.
    Ss,
    /// Typical.
    Tt,
    /// Fast NMOS / fast PMOS.
    Ff,
}

impl Process {
    /// Relative transconductance of the process corner (TT = 1.0).
    pub fn gain(self) -> f64 {
        match self {
            Process::Ss => 0.85,
            Process::Tt => 1.0,
            Process::Ff => 1.15,
        }
    }

    /// Threshold-voltage shift of the process corner, in volts (TT = 0).
    pub fn vth_shift(self) -> f64 {
        match self {
            Process::Ss => 0.06,
            Process::Tt => 0.0,
            Process::Ff => -0.06,
        }
    }
}

impl std::fmt::Display for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Process::Ss => "ss",
            Process::Tt => "tt",
            Process::Ff => "ff",
        })
    }
}

/// Back-end-of-line (interconnect) corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Beol {
    /// Worst capacitance / resistance (slow interconnect).
    CMax,
    /// Best capacitance / resistance (fast interconnect).
    CMin,
    /// Typical interconnect.
    CTyp,
}

impl std::fmt::Display for Beol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Beol::CMax => "Cmax",
            Beol::CMin => "Cmin",
            Beol::CTyp => "Ctyp",
        })
    }
}

/// Per-unit-length wire parasitics of a BEOL corner, for the clock routing
/// layer stack.
///
/// Units: resistance in kΩ/µm, capacitance in fF/µm, so that
/// `r_per_um * c_per_um * length²` is directly in ps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRc {
    /// Wire resistance, kΩ/µm.
    pub r_per_um: f64,
    /// Wire capacitance, fF/µm.
    pub c_per_um: f64,
}

/// One signoff corner: a (process, voltage, temperature, BEOL) combination.
///
/// The paper's Table 3 corners are provided by [`StdCorners`].
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Short display name, e.g. `"c0"`.
    pub name: String,
    /// Transistor process corner.
    pub process: Process,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Junction temperature in °C.
    pub temp_c: f64,
    /// Interconnect corner.
    pub beol: Beol,
}

/// Alpha exponent of the alpha-power-law drain-current model. A velocity-
/// saturated 28nm device sits well below the long-channel α=2.
const ALPHA: f64 = 1.8;
/// Nominal threshold voltage of the LP process, volts (TT, 25°C).
const VTH0: f64 = 0.42;
/// Threshold-voltage temperature coefficient, V/°C (V_th drops when hot).
const VTH_TEMP_COEFF: f64 = -0.35e-3;
/// Mobility temperature exponent: µ ∝ (T/T₀)^−1.5 in kelvin.
const MOBILITY_EXP: f64 = -1.5;
/// Reference temperature for mobility, °C.
const TEMP_REF_C: f64 = 25.0;

impl Corner {
    /// Creates a corner.
    pub fn new(
        name: impl Into<String>,
        process: Process,
        voltage: f64,
        temp_c: f64,
        beol: Beol,
    ) -> Self {
        Corner {
            name: name.into(),
            process,
            voltage,
            temp_c,
            beol,
        }
    }

    /// Effective threshold voltage at this corner's process and temperature.
    pub fn vth(&self) -> f64 {
        VTH0 + self.process.vth_shift() + VTH_TEMP_COEFF * (self.temp_c - TEMP_REF_C)
    }

    /// Gate overdrive `V_dd − V_th`; clamped to a small positive value so
    /// that absurd corners do not divide by zero.
    pub fn overdrive(&self) -> f64 {
        (self.voltage - self.vth()).max(0.02)
    }

    /// Relative carrier mobility at this corner's temperature (25 °C = 1).
    pub fn mobility(&self) -> f64 {
        let t_k = self.temp_c + 273.15;
        let t0_k = TEMP_REF_C + 273.15;
        (t_k / t0_k).powf(MOBILITY_EXP)
    }

    /// Gate-delay scale factor of this corner: proportional to
    /// `V / (gain · µ(T) · (V − V_th)^α)`. Only **ratios** between corners
    /// are meaningful; [`crate::Library`] normalizes the absolute value.
    pub fn delay_factor(&self) -> f64 {
        let i_rel = self.process.gain() * self.mobility() * self.overdrive().powf(ALPHA);
        self.voltage / i_rel
    }

    /// Per-unit wire parasitics of this corner's BEOL, with a mild metal
    /// temperature coefficient on resistance (+0.35%/°C).
    pub fn wire_rc(&self) -> WireRc {
        let (r0, c) = match self.beol {
            Beol::CMax => (2.2e-3, 0.22), // kΩ/µm, fF/µm
            Beol::CMin => (1.7e-3, 0.16),
            Beol::CTyp => (1.95e-3, 0.19),
        };
        let r = r0 * (1.0 + 0.0035 * (self.temp_c - TEMP_REF_C));
        WireRc {
            r_per_um: r,
            c_per_um: c,
        }
    }

    /// Relative leakage factor: leakage grows exponentially when V_th drops
    /// and when temperature rises. Normalized to ≈1 at TT/25°C/nominal-V.
    pub fn leakage_factor(&self) -> f64 {
        let vth_term = (-(self.vth() - VTH0) / 0.045).exp();
        let temp_term = ((self.temp_c - TEMP_REF_C) / 55.0).exp();
        let volt_term = (self.voltage / 0.9).powi(2);
        vth_term * temp_term * volt_term
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} = ({}, {:.2}V, {:.0}C, {})",
            self.name, self.process, self.voltage, self.temp_c, self.beol
        )
    }
}

/// Opaque index of a corner within a [`crate::Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CornerId(pub usize);

impl std::fmt::Display for CornerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c#{}", self.0)
    }
}

/// The four signoff corners of Table 3 of the paper, and the two triples
/// actually used per testcase class.
#[derive(Debug, Clone, Copy)]
pub struct StdCorners;

impl StdCorners {
    /// `c0 = (SS, 0.90V, −25°C, Cmax)` — the nominal (setup) corner.
    pub fn c0() -> Corner {
        Corner::new("c0", Process::Ss, 0.90, -25.0, Beol::CMax)
    }

    /// `c1 = (SS, 0.75V, −25°C, Cmax)` — the low-voltage setup corner.
    pub fn c1() -> Corner {
        Corner::new("c1", Process::Ss, 0.75, -25.0, Beol::CMax)
    }

    /// `c2 = (FF, 1.10V, 125°C, Cmin)` — a hold corner.
    pub fn c2() -> Corner {
        Corner::new("c2", Process::Ff, 1.10, 125.0, Beol::CMin)
    }

    /// `c3 = (FF, 1.32V, 125°C, Cmin)` — the fast hold corner.
    pub fn c3() -> Corner {
        Corner::new("c3", Process::Ff, 1.32, 125.0, Beol::CMin)
    }

    /// All four Table-3 corners in order.
    pub fn all() -> Vec<Corner> {
        vec![Self::c0(), Self::c1(), Self::c2(), Self::c3()]
    }

    /// The corner triple used for the CLS1 (application-processor)
    /// testcases: `{c0, c1, c3}`.
    pub fn c0_c1_c3() -> Vec<Corner> {
        vec![Self::c0(), Self::c1(), Self::c3()]
    }

    /// The corner triple used for the CLS2 (memory-controller) testcase:
    /// `{c0, c1, c2}`.
    pub fn c0_c1_c2() -> Vec<Corner> {
        vec![Self::c0(), Self::c1(), Self::c2()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_delay_ratios_match_silicon_expectations() {
        let c0 = StdCorners::c0().delay_factor();
        let c1 = StdCorners::c1().delay_factor();
        let c2 = StdCorners::c2().delay_factor();
        let c3 = StdCorners::c3().delay_factor();
        let r1 = c1 / c0;
        let r2 = c2 / c0;
        let r3 = c3 / c0;
        assert!(r1 > 1.6 && r1 < 2.4, "c1/c0 = {r1}");
        assert!(r2 > 0.4 && r2 < 0.7, "c2/c0 = {r2}");
        assert!(r3 > 0.3 && r3 < 0.55, "c3/c0 = {r3}");
        assert!(r3 < r2, "higher voltage FF corner must be faster");
    }

    #[test]
    fn vth_moves_with_process_and_temperature() {
        let ss_cold = StdCorners::c0();
        let ff_hot = StdCorners::c2();
        assert!(ss_cold.vth() > ff_hot.vth());
        // cold raises V_th above nominal shift
        assert!(ss_cold.vth() > VTH0 + 0.06);
    }

    #[test]
    fn mobility_decreases_with_temperature() {
        assert!(StdCorners::c0().mobility() > 1.0);
        assert!(StdCorners::c2().mobility() < 1.0);
    }

    #[test]
    fn wire_rc_cmax_worse_than_cmin() {
        let cmax = StdCorners::c0().wire_rc();
        let cmin = StdCorners::c3().wire_rc();
        assert!(cmax.c_per_um > cmin.c_per_um);
        // c3 is hot, which raises metal R, but the Cmin base is far enough
        // below Cmax that RC is still clearly better.
        assert!(
            cmax.r_per_um * cmax.c_per_um > cmin.r_per_um * cmin.c_per_um,
            "Cmax RC product must exceed Cmin"
        );
    }

    #[test]
    fn leakage_orders_ss_cold_below_ff_hot() {
        assert!(StdCorners::c0().leakage_factor() < StdCorners::c3().leakage_factor());
    }

    #[test]
    fn overdrive_clamped_for_absurd_corners() {
        let c = Corner::new("bad", Process::Ss, 0.2, -40.0, Beol::CMax);
        assert!(c.overdrive() >= 0.02);
        assert!(c.delay_factor().is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(StdCorners::c0().to_string(), "c0 = (ss, 0.90V, -25C, Cmax)");
        assert_eq!(CornerId(2).to_string(), "c#2");
    }
}
