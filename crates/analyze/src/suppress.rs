//! In-source suppressions: `// clk-analyze: allow(A001) <reason>`.
//!
//! A suppression silences matching findings on its own line or the line
//! directly below (the comment-above idiom). The reason text after the
//! `allow(...)` group is mandatory, and a suppression that matches no
//! finding is *stale* — both hygiene violations surface as A006
//! findings so the allow-list stays honest.

use crate::finding::{Code, Finding, Severity};
use crate::SourceFile;

/// One parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-indexed line of the comment.
    pub line: u32,
    /// Codes the directive names (`allow(A001, A003)` lists two).
    pub codes: Vec<Code>,
    /// Free-text justification after the `allow(...)` group.
    pub reason: String,
}

/// A finding that was silenced, for reporting.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Code of the silenced finding.
    pub code: Code,
    /// File it was silenced in.
    pub file: String,
    /// Line of the silenced finding.
    pub line: u32,
    /// The justification given.
    pub reason: String,
}

/// The directive marker inside a comment.
const MARKER: &str = "clk-analyze:";

/// Parses the suppression directives out of a file's comments.
pub fn parse(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &file.comments {
        // doc comments (`//!`, `///`, `/*!`, `/**`) are documentation,
        // not directives — the crate's own docs describe the grammar
        if c.text.starts_with('!') || c.text.starts_with('/') || c.text.starts_with('*') {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[pos + MARKER.len()..];
        let mut codes = Vec::new();
        let mut cursor = rest;
        let mut tail_start = 0usize;
        while let Some(a) = cursor.find("allow(") {
            let after = &cursor[a + "allow(".len()..];
            let Some(close) = after.find(')') else { break };
            for part in after[..close].split(',') {
                if let Some(code) = Code::parse(part) {
                    if Code::SUPPRESSIBLE.contains(&code) && !codes.contains(&code) {
                        codes.push(code);
                    }
                }
            }
            let consumed = a + "allow(".len() + close + 1;
            tail_start += consumed;
            cursor = &cursor[consumed..];
        }
        let reason = rest[tail_start.min(rest.len())..].trim().to_string();
        // a marker with no parsable allow-group is itself suspicious but
        // may be prose mentioning the tool; only treat it as a directive
        // when at least one code parsed
        if !codes.is_empty() {
            out.push(Suppression {
                line: c.line,
                codes,
                reason,
            });
        }
    }
    out
}

/// Applies suppressions to `raw` findings. Returns the surviving
/// findings, the suppressed ones, and the A006 hygiene findings for
/// stale or reasonless directives.
pub fn apply(
    file: &SourceFile,
    raw: Vec<Finding>,
) -> (Vec<Finding>, Vec<Suppressed>, Vec<Finding>) {
    let sups = parse(file);
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::new();
    let mut silenced = Vec::new();
    for f in raw {
        let hit = sups
            .iter()
            .enumerate()
            .find(|(_, s)| s.codes.contains(&f.code) && (s.line == f.line || s.line + 1 == f.line));
        match hit {
            Some((i, s)) if !s.reason.is_empty() => {
                used[i] = true;
                silenced.push(Suppressed {
                    code: f.code,
                    file: file.path.clone(),
                    line: f.line,
                    reason: s.reason.clone(),
                });
            }
            Some((i, _)) => {
                // reasonless: the directive still matched (so it is not
                // stale) but the finding stands, plus a hygiene finding
                used[i] = true;
                kept.push(f);
            }
            None => kept.push(f),
        }
    }
    let mut hygiene = Vec::new();
    for (i, s) in sups.iter().enumerate() {
        if s.reason.is_empty() {
            hygiene.push(hygiene_finding(
                file,
                s,
                format!(
                    "suppression of {} has no reason — say why the finding is acceptable",
                    codes_list(&s.codes)
                ),
            ));
        } else if !used[i] {
            hygiene.push(hygiene_finding(
                file,
                s,
                format!(
                    "stale suppression: nothing on line {} or {} triggers {} anymore — delete it",
                    s.line,
                    s.line + 1,
                    codes_list(&s.codes)
                ),
            ));
        }
    }
    (kept, silenced, hygiene)
}

fn codes_list(codes: &[Code]) -> String {
    codes
        .iter()
        .map(|c| c.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn hygiene_finding(file: &SourceFile, s: &Suppression, message: String) -> Finding {
    Finding {
        code: Code::A006,
        severity: Severity::Warning,
        file: file.path.clone(),
        line: s.line,
        snippet: file
            .lines
            .get(s.line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;

    #[test]
    fn parses_multi_code_directives() {
        let f = source_from_str(
            "x.rs",
            "// clk-analyze: allow(A001, A002) sorted right after collection\n",
        );
        let s = parse(&f);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].codes, vec![Code::A001, Code::A002]);
        assert_eq!(s[0].reason, "sorted right after collection");
    }

    #[test]
    fn prose_mentioning_the_tool_is_not_a_directive() {
        let f = source_from_str(
            "x.rs",
            "// clk-analyze: the analyzer described in DESIGN.md\n",
        );
        assert!(parse(&f).is_empty());
    }

    #[test]
    fn doc_comments_are_never_directives() {
        let src = "//! grammar: `// clk-analyze: allow(A001) <reason>`\n\
                   /// same in item docs: clk-analyze: allow(A003) why\n\
                   fn f() {}\n";
        assert!(parse(&source_from_str("x.rs", src)).is_empty());
    }

    #[test]
    fn a006_is_not_suppressible() {
        let f = source_from_str("x.rs", "// clk-analyze: allow(A006) nice try\n");
        assert!(parse(&f).is_empty());
    }

    #[test]
    fn same_line_and_line_above_both_work() {
        let src = "fn f() {\n\
                   let a = Instant::now(); // clk-analyze: allow(A003) telemetry\n\
                   // clk-analyze: allow(A003) telemetry again\n\
                   let b = Instant::now();\n\
                   }";
        let file = source_from_str("crates/core/src/x.rs", src);
        let raw = crate::passes::run_passes(&file, &crate::AnalyzeConfig::default());
        assert_eq!(raw.len(), 2);
        let (kept, silenced, hygiene) = apply(&file, raw);
        assert!(kept.is_empty());
        assert_eq!(silenced.len(), 2);
        assert!(hygiene.is_empty());
    }

    #[test]
    fn reasonless_suppression_keeps_finding_and_reports_a006() {
        let src = "// clk-analyze: allow(A003)\nlet b = Instant::now();\n";
        let file = source_from_str("crates/core/src/x.rs", src);
        let raw = crate::passes::run_passes(&file, &crate::AnalyzeConfig::default());
        let (kept, silenced, hygiene) = apply(&file, raw);
        assert_eq!(kept.len(), 1, "finding must survive");
        assert!(silenced.is_empty());
        assert_eq!(hygiene.len(), 1);
        assert_eq!(hygiene[0].code, Code::A006);
    }
}
