//! Quickstart: generate a small application-processor testcase, run the
//! full global-local skew-variation optimization, print a Table-5-style
//! summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{optimize, Flow};
use clockvar_workbench::{quick_flow_config, table5_header, table5_orig_row, table5_row};

fn main() {
    let n_sinks = 64;
    println!(
        "generating {} ({n_sinks} sinks)...",
        TestcaseKind::Cls1v1.name()
    );
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n_sinks, 1);
    for c in tc.lib.corners() {
        println!("  {c}");
    }

    println!("running the global-local flow (scaled-down configuration)...");
    let cfg = quick_flow_config();
    let report = optimize(&tc, Flow::GlobalLocal, &cfg);

    let corner_names: Vec<String> = tc.lib.corners().iter().map(|c| c.name.clone()).collect();
    println!();
    println!("{}", table5_header(&corner_names));
    println!("{}", table5_orig_row(&report));
    println!("{}", table5_row("global-local", &report));
    println!();
    println!(
        "sum of skew variation: {:.1} -> {:.1} ps ({:.1}% reduction)",
        report.variation_before,
        report.variation_after,
        100.0 * (1.0 - report.variation_ratio())
    );
    if let Some(g) = &report.global_report {
        println!(
            "  global phase: {} arcs rebuilt (lambda = {:?}, {} LP pivots)",
            g.arcs_changed, g.lambda_used, g.lp_iterations
        );
    }
    if let Some(l) = &report.local_report {
        println!(
            "  local phase: {} accepted moves, {} golden evaluations",
            l.iterations.len(),
            l.golden_evals
        );
    }
}
