//! Cross-crate integration tests: full generate → CTS → optimize
//! pipelines at small scale, checking the paper's end-to-end guarantees.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_cmp)]

use clk_cts::{variation_sum, Testcase, TestcaseKind};
use clk_liberty::CornerId;
use clk_skewopt::{optimize_with, DeltaLatencyModel, Flow, StageLuts};
use clk_sta::{local_skew_ps, pair_skews, Timer, Violation};
use clockvar_workbench::quick_flow_config;

fn artifacts(tc: &Testcase) -> (StageLuts, DeltaLatencyModel) {
    let cfg = quick_flow_config();
    (
        StageLuts::characterize(&tc.lib),
        DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train),
    )
}

#[test]
fn global_local_beats_or_matches_each_phase_alone() {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 77);
    let cfg = quick_flow_config();
    let (luts, model) = artifacts(&tc);
    let g = optimize_with(&tc, Flow::Global, &cfg, Some(&luts), None);
    let l = optimize_with(&tc, Flow::Local, &cfg, None, Some(&model));
    let gl = optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model));
    // none of the flows may degrade the metric
    assert!(g.variation_ratio() <= 1.0 + 1e-9);
    assert!(l.variation_ratio() <= 1.0 + 1e-9);
    assert!(gl.variation_ratio() <= 1.0 + 1e-9);
    // the combined flow is at least as good as the global phase alone
    // (its local phase starts from the global result and only accepts
    // golden-verified improvements)
    assert!(
        gl.variation_after <= g.variation_after + 1e-6,
        "global-local {} vs global {}",
        gl.variation_after,
        g.variation_after
    );
}

#[test]
fn optimized_trees_stay_sane() {
    let tc = Testcase::generate(TestcaseKind::Cls1v2, 40, 78);
    let cfg = quick_flow_config();
    let (luts, model) = artifacts(&tc);
    let report = optimize_with(&tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model));
    let tree = &report.tree;
    tree.validate()
        .expect("tree invariants hold after both phases");
    // clock polarity preserved at every sink
    for s in tree.sinks().collect::<Vec<_>>() {
        assert_eq!(tree.inversions_to(s) % 2, 0, "sink {s} polarity flipped");
    }
    // the paper's footnote: no max-cap / max-transition violations added
    let timer = Timer::golden();
    for corner in tc.lib.corner_ids() {
        let before = timer.analyze(&tc.tree, &tc.lib, corner);
        let after = timer.analyze(tree, &tc.lib, corner);
        let count = |v: &[Violation]| v.len();
        assert!(
            count(after.violations()) <= count(before.violations()),
            "corner {corner}: violations grew: {:?}",
            after.violations()
        );
    }
    // local skew must not degrade beyond the configured guard
    for (k, corner) in tc.lib.corner_ids().enumerate() {
        let before = local_skew_ps(&pair_skews(
            &timer.analyze(&tc.tree, &tc.lib, corner),
            tc.tree.sink_pairs(),
        ));
        let after = local_skew_ps(&pair_skews(
            &timer.analyze(tree, &tc.lib, corner),
            tree.sink_pairs(),
        ));
        assert!(
            after <= before * cfg.global.skew_guard_factor + cfg.global.skew_guard_ps,
            "corner {k}: local skew {before} -> {after}"
        );
    }
}

#[test]
fn memory_controller_pipeline_runs() {
    let tc = Testcase::generate(TestcaseKind::Cls2v1, 40, 79);
    assert_eq!(tc.lib.corner_count(), 3);
    // CLS2 uses {c0, c1, c2}: its hold corner is 1.10V FF
    assert!((tc.lib.corner(CornerId(2)).voltage - 1.10).abs() < 1e-9);
    let cfg = quick_flow_config();
    let luts = StageLuts::characterize(&tc.lib);
    let report = optimize_with(&tc, Flow::Global, &cfg, Some(&luts), None);
    report.tree.validate().unwrap();
    assert!(report.variation_ratio() <= 1.0 + 1e-9);
}

#[test]
fn generation_and_optimization_are_deterministic() {
    let a = Testcase::generate(TestcaseKind::Cls1v1, 32, 80);
    let b = Testcase::generate(TestcaseKind::Cls1v1, 32, 80);
    assert_eq!(
        variation_sum(&a.tree, &a.lib),
        variation_sum(&b.tree, &b.lib)
    );
    let cfg = quick_flow_config();
    let luts_a = StageLuts::characterize(&a.lib);
    let luts_b = StageLuts::characterize(&b.lib);
    let ra = optimize_with(&a, Flow::Global, &cfg, Some(&luts_a), None);
    let rb = optimize_with(&b, Flow::Global, &cfg, Some(&luts_b), None);
    assert_eq!(ra.variation_after, rb.variation_after);
    assert_eq!(ra.cells_after, rb.cells_after);
}

#[test]
fn alpha_normalization_tracks_corner_scale() {
    // c1 skews are roughly delay-ratio times c0 skews; alpha_1 must come
    // out near the inverse ratio so normalized variation is comparable
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 81);
    let timer = Timer::golden();
    let skews: Vec<Vec<f64>> = tc
        .lib
        .corner_ids()
        .map(|c| pair_skews(&timer.analyze(&tc.tree, &tc.lib, c), tc.tree.sink_pairs()))
        .collect();
    let alphas = clk_sta::alpha_factors(&skews);
    assert!((alphas[0] - 1.0).abs() < 1e-12);
    assert!(
        alphas[1] > 0.3 && alphas[1] < 0.8,
        "alpha_1 = {}",
        alphas[1]
    );
    assert!(
        alphas[2] > 1.5 && alphas[2] < 5.0,
        "alpha_2 = {}",
        alphas[2]
    );
}
