//! Flight recorder: a bounded ring buffer of the most recent events,
//! dumped when a fault is absorbed so the fault can be correlated with
//! what the flow was doing just before it.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::EventRecord;
use crate::json::Value;

/// Default ring capacity — deep enough to span a full global round on
/// the bench testcases.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// One captured dump: the ring contents at the moment a fault was
/// absorbed.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken, e.g. `fault:lp_infeasible`.
    pub reason: String,
    /// Sequence number of the fault event that triggered the dump.
    pub fault_seq: u64,
    /// The buffered events, oldest first, rendered as JSONL lines.
    pub events: Vec<String>,
}

impl FlightDump {
    /// Renders the dump as a JSON object (used as the `fields` payload
    /// of a `flight_dump` event).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("reason".to_string(), Value::from(self.reason.as_str())),
            ("fault_seq".to_string(), Value::from(self.fault_seq)),
            ("depth".to_string(), Value::from(self.events.len())),
        ])
    }
}

/// Bounded ring of recent event lines plus the dumps taken so far.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<String>>,
    dumps: Mutex<Vec<FlightDump>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dumps: Mutex::new(Vec::new()),
        }
    }

    /// Appends one event to the ring, evicting the oldest if full.
    pub fn record(&self, rec: &EventRecord) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec.to_json().to_json());
    }

    /// Captures the current ring as a dump and stores it.
    pub fn dump(&self, reason: &str, fault_seq: u64) -> FlightDump {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dump = FlightDump {
            reason: reason.to_string(),
            fault_seq,
            events: ring.iter().cloned().collect(),
        };
        drop(ring);
        self.dumps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(dump.clone());
        dump
    }

    /// All dumps captured so far, in order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RECORDER_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Level};

    fn rec(seq: u64) -> EventRecord {
        EventRecord {
            kind: EventKind::Event,
            seq,
            ts_ms: seq as f64,
            span: None,
            parent: None,
            level: Level::Info,
            name: format!("e{seq}"),
            elapsed_ms: None,
            fields: vec![],
        }
    }

    #[test]
    fn ring_evicts_oldest_and_dump_preserves_order() {
        let r = FlightRecorder::new(3);
        for seq in 0..5 {
            r.record(&rec(seq));
        }
        let d = r.dump("fault:test", 99);
        assert_eq!(d.events.len(), 3);
        assert!(d.events[0].contains("\"e2\""));
        assert!(d.events[2].contains("\"e4\""));
        assert_eq!(r.dumps().len(), 1);
        assert_eq!(r.dumps()[0].fault_seq, 99);
    }
}
