//! Tool-interface tour: optimize a testcase, then hand the result to the
//! outside world the way the paper's flow hands data to commercial tools —
//! Liberty for the library, `.ctree`/Verilog/DEF for the design, SPEF for
//! the parasitics of the root net, plus a signoff-style variation report.
//!
//! ```sh
//! cargo run --release --example export_design -- [outdir]
//! ```

use std::fs;
use std::path::PathBuf;

use clk_cts::{Testcase, TestcaseKind};
use clk_delay::{spef::write_spef, RcTree};
use clk_liberty::{text::write_liberty, CornerId};
use clk_netlist::io::{parse_ctree, write_ctree, write_def, write_verilog};
use clk_route::WireTree;
use clk_skewopt::{optimize, Flow};
use clk_sta::report::report_variation;
use clockvar_workbench::quick_flow_config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outdir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/export_demo".to_string()),
    );
    fs::create_dir_all(&outdir)?;

    let tc = Testcase::generate(TestcaseKind::Cls1v1, 48, 1);
    let report = optimize(&tc, Flow::GlobalLocal, &quick_flow_config());
    println!(
        "optimized: variation {:.1} -> {:.1} ps",
        report.variation_before, report.variation_after
    );
    let tree = &report.tree;

    // library, one .lib per corner
    for (k, corner) in tc.lib.corners().iter().enumerate() {
        let path = outdir.join(format!("clockvar_{}.lib", corner.name));
        fs::write(&path, write_liberty(&tc.lib, CornerId(k)))?;
        println!("wrote {}", path.display());
    }
    // the design, three ways
    let ctree = write_ctree(tree, &tc.lib);
    fs::write(outdir.join("clock_tree.ctree"), &ctree)?;
    let restored = parse_ctree(&ctree, &tc.lib)?;
    assert_eq!(restored.len(), tree.len(), "round trip preserved the tree");
    fs::write(
        outdir.join("clock_tree.v"),
        write_verilog(tree, &tc.lib, "clockvar_cls1v1"),
    )?;
    fs::write(
        outdir.join("clock_tree.def"),
        write_def(tree, &tc.lib, "clockvar_cls1v1", tc.floorplan.die),
    )?;
    // parasitics of the root net (driver = source)
    let root = tree.root();
    let mut wt = WireTree::new(tree.loc(root));
    let mut loads = Vec::new();
    for &c in tree.children(root) {
        let route = tree.node(c).route.as_ref().expect("routed");
        let mut prev = WireTree::ROOT;
        for &p in &route.points()[1..] {
            prev = wt.add_child(prev, p);
        }
        loads.push((prev, 1.0));
    }
    let rct = RcTree::extract(&wt, tc.lib.wire_rc(CornerId(0)), &loads, 5.0);
    fs::write(outdir.join("root_net.spef"), write_spef("clk_root", &rct))?;
    // the report a signoff engineer reads
    fs::write(
        outdir.join("variation.rpt"),
        report_variation(tree, &tc.lib, 15),
    )?;
    println!(
        "wrote {}/clock_tree.{{ctree,v,def}}, root_net.spef, variation.rpt",
        outdir.display()
    );
    Ok(())
}
