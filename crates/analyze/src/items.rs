//! Item model: the functions, statics, and impl blocks of one file,
//! extracted from its token trees.
//!
//! This is deliberately not a Rust AST. A function item is a name, an
//! optional `impl` type qualifier, a parameter-name list, a body (kept
//! as trees so the call-graph layer can see closures), and a handful of
//! semantic markers the A1xx passes need: does it return `!`, does its
//! doc comment declare `# Panics`, where does its body start and end.
//! Extraction is total — unrecognized constructs are simply skipped —
//! and never panics.

use crate::lexer::TokKind;
use crate::tree::{flatten, Delim, Group, TokenTree};
use crate::SourceFile;

/// One `fn` item (free, impl method, or default trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// The function's name.
    pub name: String,
    /// The `impl` type it belongs to, when inside an impl block.
    pub qual: Option<String>,
    /// Names bound by the parameter list (`self` included literally).
    pub params: Vec<String>,
    /// Whether the return type is `!` (a diverging facade — its panics
    /// are its contract, not an accident).
    pub returns_never: bool,
    /// Whether the doc comment above declares a `# Panics` section.
    pub doc_panics: bool,
    /// Body trees (contents of the outer brace group).
    pub body: Vec<TokenTree>,
    /// Line of the body's closing brace.
    pub end_line: u32,
}

impl FnItem {
    /// `Type::name` when qualified, else just the name.
    pub fn key(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// The body as a flat token stream (brackets re-materialized).
    pub fn body_tokens(&self) -> Vec<crate::lexer::Token> {
        flatten(&self.body)
    }
}

/// One item-level `static` (including `thread_local!` members).
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Defining file.
    pub file: String,
    /// 1-indexed line of the `static` keyword.
    pub line: u32,
    /// The static's name.
    pub name: String,
    /// `static mut` — unsynchronized shared mutation.
    pub is_mut: bool,
    /// Declared inside a `thread_local!` block — per-thread divergence.
    pub thread_local: bool,
    /// The declared type mentions `Cell`/`RefCell`/`UnsafeCell` —
    /// interior mutability without synchronization.
    pub interior_mut: bool,
}

impl StaticItem {
    /// Whether reaching this static from a worker thread is a hazard:
    /// plain immutable `static X: AtomicU64`-style state is fine, but
    /// `static mut`, thread-locals, and unsynchronized interior
    /// mutability are not.
    pub fn hazardous(&self) -> bool {
        self.is_mut || self.thread_local || self.interior_mut
    }
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Item-level statics in source order.
    pub statics: Vec<StaticItem>,
}

/// Extracts the item model from a file's token trees.
pub fn extract(file: &SourceFile, trees: &[TokenTree]) -> FileItems {
    let mut out = FileItems::default();
    walk(file, trees, None, &mut out);
    out
}

fn walk(file: &SourceFile, seq: &[TokenTree], qual: Option<&str>, out: &mut FileItems) {
    let mut i = 0usize;
    while i < seq.len() {
        let t = &seq[i];
        if t.is_ident("fn") {
            if let Some(consumed) = extract_fn(file, &seq[i..], qual, out) {
                i += consumed;
                continue;
            }
        } else if t.is_ident("impl") {
            if let Some(consumed) = extract_impl(file, &seq[i..], out) {
                i += consumed;
                continue;
            }
        } else if t.is_ident("static") {
            i += extract_static(file, &seq[i..], false, out);
            continue;
        } else if t.is_ident("thread_local") && seq.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            // thread_local! { static A: …; static B: …; }
            if let Some(TokenTree::Group(g)) = seq.get(i + 2) {
                let mut j = 0usize;
                while j < g.trees.len() {
                    if g.trees[j].is_ident("static") {
                        j += extract_static(file, &g.trees[j..], true, out);
                    } else {
                        j += 1;
                    }
                }
                i += 3;
                continue;
            }
        } else if let TokenTree::Group(g) = t {
            // mod bodies, trait bodies, macro invocation blocks: recurse
            // without a qualifier so default trait methods and nested
            // items are still seen
            if g.delim == Delim::Brace {
                walk(file, &g.trees, None, out);
            }
        }
        i += 1;
    }
}

/// Extracts `fn name …(params)… [-> ret] { body }` starting at the `fn`
/// leaf; returns how many trees it consumed, or `None` if the shape is
/// not a function definition (e.g. a trait method declaration ending in
/// `;` still consumes up to the `;`, a bare `fn` in a type position
/// does not).
fn extract_fn(
    file: &SourceFile,
    seq: &[TokenTree],
    qual: Option<&str>,
    out: &mut FileItems,
) -> Option<usize> {
    let fn_line = seq.first()?.line();
    let name = match seq.get(1) {
        Some(TokenTree::Leaf(t)) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return None, // `fn(` type position, or macro fragment
    };
    // the parameter group is the first paren group before any brace/`;`;
    // generic params `<…>` are leaves (angle brackets don't group)
    let mut j = 2usize;
    let mut params_at = None;
    while j < seq.len() && j < 64 {
        match &seq[j] {
            TokenTree::Group(g) if g.delim == Delim::Paren => {
                params_at = Some(j);
                break;
            }
            TokenTree::Group(g) if g.delim == Delim::Brace => return None,
            TokenTree::Leaf(t) if t.text == ";" => return Some(j + 1),
            _ => j += 1,
        }
    }
    let params_at = params_at?;
    let params = match &seq[params_at] {
        TokenTree::Group(g) => param_names(g),
        TokenTree::Leaf(_) => Vec::new(),
    };
    // between params and the body: return type (watch for `-> !`) or a
    // `;` (trait declaration, no body)
    let mut returns_never = false;
    let mut k = params_at + 1;
    let body = loop {
        match seq.get(k) {
            Some(TokenTree::Leaf(t)) if t.text == "->" => {
                if seq.get(k + 1).is_some_and(|n| n.is_punct("!")) {
                    returns_never = true;
                }
                k += 1;
            }
            Some(TokenTree::Leaf(t)) if t.text == ";" => return Some(k + 1),
            Some(TokenTree::Group(g)) if g.delim == Delim::Brace => break g,
            Some(_) => k += 1,
            None => return Some(k),
        }
        if k > params_at + 96 {
            return Some(k); // runaway where-clause; bail
        }
    };
    out.fns.push(FnItem {
        file: file.path.clone(),
        line: fn_line,
        name,
        qual: qual.map(str::to_string),
        params,
        returns_never,
        doc_panics: doc_declares_panics(file, fn_line),
        body: body.trees.clone(),
        end_line: body.close_line,
    });
    // nested fns / fns inside closures are items too
    walk(file, &body.trees, None, out);
    Some(k + 1)
}

/// Parameter names out of the paren group: for each top-level
/// comma-separated segment, the idents of the pattern before the `:`
/// (or the whole segment for `self` forms).
fn param_names(g: &Group) -> Vec<String> {
    let mut names = Vec::new();
    for seg in split_commas(&g.trees) {
        let colon = seg.iter().position(|t| t.is_punct(":"));
        let pattern = &seg[..colon.unwrap_or(seg.len())];
        for t in pattern {
            match t {
                TokenTree::Leaf(tok) if tok.kind == TokKind::Ident => {
                    if tok.text != "mut" && tok.text != "ref" && !names.contains(&tok.text) {
                        names.push(tok.text.clone());
                    }
                }
                // tuple/struct patterns: (a, b) or S { a, b }
                TokenTree::Group(inner) => {
                    for it in &inner.trees {
                        if let TokenTree::Leaf(tok) = it {
                            if tok.kind == TokKind::Ident
                                && tok.text != "mut"
                                && tok.text != "ref"
                                && !names.contains(&tok.text)
                            {
                                names.push(tok.text.clone());
                            }
                        }
                    }
                }
                TokenTree::Leaf(_) => {}
            }
        }
        // self has no `:` but is a binding
        if colon.is_none() && !pattern.iter().any(|t| t.is_ident("self")) {
            // untyped segment that isn't self: not a parameter pattern
            // we understand; nothing bound
        }
    }
    names
}

/// Splits a tree slice at top-level commas.
pub(crate) fn split_commas(trees: &[TokenTree]) -> Vec<&[TokenTree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in trees.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&trees[start..i]);
            start = i + 1;
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

/// `impl [<…>] Type { … }` / `impl Trait for Type { … }`: walks the
/// body with the type name as qualifier. Returns trees consumed.
fn extract_impl(file: &SourceFile, seq: &[TokenTree], out: &mut FileItems) -> Option<usize> {
    // the qualifier is the last identifier at angle-depth 0 before the
    // body brace (skipping `where` clauses): `impl Display for Foo<'a>`
    // → Foo, `impl foo::Bar` → Bar
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut j = 1usize;
    while j < seq.len() && j < 96 {
        match &seq[j] {
            TokenTree::Leaf(t) => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "where" if angle <= 0 => {
                    // type is fixed by now; scan on for the brace
                }
                _ => {
                    if t.kind == TokKind::Ident && angle <= 0 && t.text != "for" && t.text != "dyn"
                    {
                        ty = Some(t.text.clone());
                    }
                }
            },
            TokenTree::Group(g) if g.delim == Delim::Brace => {
                let qual = ty?;
                walk(file, &g.trees, Some(&qual), out);
                return Some(j + 1);
            }
            TokenTree::Group(_) => {}
        }
        j += 1;
    }
    None
}

/// `static [mut] NAME : Type = …;` — returns trees consumed from the
/// `static` leaf.
fn extract_static(
    file: &SourceFile,
    seq: &[TokenTree],
    thread_local: bool,
    out: &mut FileItems,
) -> usize {
    let line = seq.first().map_or(0, TokenTree::line);
    let mut j = 1usize;
    let mut is_mut = false;
    if seq.get(j).is_some_and(|t| t.is_ident("mut")) {
        is_mut = true;
        j += 1;
    }
    let Some(TokenTree::Leaf(name)) = seq.get(j) else {
        return j.max(1);
    };
    if name.kind != TokKind::Ident {
        return j + 1;
    }
    // type window: up to `=` or `;` at this level
    let mut interior_mut = false;
    let mut k = j + 1;
    while k < seq.len() && k < j + 64 {
        match &seq[k] {
            TokenTree::Leaf(t) if t.text == "=" || t.text == ";" => break,
            TokenTree::Leaf(t)
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "Cell" | "RefCell" | "UnsafeCell") =>
            {
                interior_mut = true;
                k += 1;
            }
            _ => k += 1,
        }
    }
    out.statics.push(StaticItem {
        file: file.path.clone(),
        line,
        name: name.text.clone(),
        is_mut,
        thread_local,
        interior_mut,
    });
    k
}

/// Whether the contiguous doc/attribute block directly above `fn_line`
/// contains a `# Panics` heading.
fn doc_declares_panics(file: &SourceFile, fn_line: u32) -> bool {
    let mut line = fn_line.saturating_sub(1);
    while line >= 1 {
        let Some(text) = file.lines.get((line - 1) as usize) else {
            break;
        };
        let trimmed = text.trim_start();
        let is_doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
        let is_attr_or_comment = is_doc
            || trimmed.starts_with("//")
            || trimmed.starts_with("#[")
            || trimmed.starts_with("#!");
        if !is_attr_or_comment {
            break;
        }
        if is_doc && trimmed.contains("# Panics") {
            return true;
        }
        line -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_from_str;
    use crate::tree::parse_trees;

    fn items(src: &str) -> FileItems {
        let file = source_from_str("crates/x/src/lib.rs", src);
        let trees = parse_trees(&file.tokens).expect("fixture parses");
        extract(&file, &trees)
    }

    #[test]
    fn free_fns_and_methods_are_qualified() {
        let it = items(
            "fn free(a: u32, mut b: f64) {}\n\
             struct S;\n\
             impl S { fn method(&self, x: u8) -> u8 { x } }\n\
             impl std::fmt::Display for S {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n",
        );
        let keys: Vec<String> = it.fns.iter().map(FnItem::key).collect();
        assert_eq!(keys, vec!["free", "S::method", "S::fmt"]);
        assert_eq!(it.fns[0].params, vec!["a", "b"]);
        assert_eq!(it.fns[1].params, vec!["self", "x"]);
    }

    #[test]
    fn never_return_and_doc_panics_are_marked() {
        let it = items(
            "/// Dies.\n///\n/// # Panics\n/// Always.\nfn die() -> ! { panic!(\"x\") }\n\
             fn ok() -> u32 { 1 }\n",
        );
        assert!(it.fns[0].returns_never);
        assert!(it.fns[0].doc_panics);
        assert!(!it.fns[1].returns_never);
        assert!(!it.fns[1].doc_panics, "doc must not bleed downward");
    }

    #[test]
    fn statics_carry_hazard_markers() {
        let it = items(
            "static OK: u32 = 0;\n\
             static mut RACY: u32 = 0;\n\
             static CACHE: RefCell<u32> = RefCell::new(0);\n\
             thread_local! { static TLS: Cell<u32> = Cell::new(0); }\n",
        );
        let names: Vec<(&str, bool)> = it
            .statics
            .iter()
            .map(|s| (s.name.as_str(), s.hazardous()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("OK", false),
                ("RACY", true),
                ("CACHE", true),
                ("TLS", true)
            ]
        );
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let it = items("trait T { fn decl(&self) -> u32; fn dflt(&self) -> u32 { 0 } }");
        let keys: Vec<String> = it.fns.iter().map(FnItem::key).collect();
        assert_eq!(keys, vec!["dflt"]);
    }

    #[test]
    fn nested_fns_are_items_too() {
        let it = items("fn outer() { fn inner(q: u8) {} inner(3); }");
        let keys: Vec<String> = it.fns.iter().map(FnItem::key).collect();
        assert_eq!(keys, vec!["outer", "inner"]);
    }
}
