//! The baseline CTS engine: clustering, inverter-pair insertion, sizing,
//! long-edge repeatering.

use clk_geom::{um_to_dbu, Point, Rect};
use clk_liberty::{CellId, CornerId, Library};
use clk_netlist::{rebuild_arc_legalized, Arc, ClockTree, Floorplan, NodeId, NodeKind};

/// CTS tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsConfig {
    /// Maximum sinks driven by one leaf-level inverter pair (the paper's
    /// artificial trees use 20–40 for last-stage buffers).
    pub leaf_fanout: usize,
    /// Maximum child clusters per upper-level driver (1–5 in the paper).
    pub branch_fanout: usize,
    /// Edges longer than this get repeater pairs, µm.
    pub max_unbuffered_um: f64,
    /// Sizing headroom: chosen cell must satisfy
    /// `load · sizing_margin ≤ max_cap`.
    pub sizing_margin: f64,
    /// Spacing between the two inverters of a pair, µm.
    pub pair_gap_um: f64,
    /// Corner whose wire capacitance drives sizing decisions.
    pub sizing_corner: CornerId,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            leaf_fanout: 16,
            branch_fanout: 4,
            max_unbuffered_um: 140.0,
            sizing_margin: 1.35,
            pair_gap_um: 4.0,
            sizing_corner: CornerId(0),
        }
    }
}

/// A hierarchical cluster of sink indices.
enum Cluster {
    Leaf(Vec<usize>),
    Internal(Vec<Cluster>),
}

impl Cluster {
    fn centroid(&self, sinks: &[Point]) -> Point {
        fn accum(c: &Cluster, sinks: &[Point], sum: &mut (i128, i128, i64)) {
            match c {
                Cluster::Leaf(idx) => {
                    for &i in idx {
                        sum.0 += i128::from(sinks[i].x);
                        sum.1 += i128::from(sinks[i].y);
                        sum.2 += 1;
                    }
                }
                Cluster::Internal(ch) => {
                    for c in ch {
                        accum(c, sinks, sum);
                    }
                }
            }
        }
        let mut sum = (0i128, 0i128, 0i64);
        accum(self, sinks, &mut sum);
        debug_assert!(sum.2 > 0);
        Point::new(
            (sum.0 / i128::from(sum.2)) as i64,
            (sum.1 / i128::from(sum.2)) as i64,
        )
    }
}

/// The CTS engine. See the crate docs for the flow description.
#[derive(Debug, Clone, Default)]
pub struct CtsEngine {
    cfg: CtsConfig,
}

impl CtsEngine {
    /// An engine with explicit configuration.
    pub fn new(cfg: CtsConfig) -> Self {
        CtsEngine { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CtsConfig {
        &self.cfg
    }

    /// Synthesizes a buffered, routed clock tree over `sinks`, rooted at a
    /// source placed at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty.
    pub fn synthesize(
        &self,
        lib: &Library,
        fp: &Floorplan,
        source: Point,
        sinks: &[Point],
    ) -> ClockTree {
        assert!(!sinks.is_empty(), "CTS needs at least one sink");
        let root_cell = CellId(lib.cells().len() - 1);
        let mut tree = ClockTree::new(fp.legalize(source), root_cell);

        // 1. cluster: sinks into leaf groups, then groups into a hierarchy
        let all: Vec<usize> = (0..sinks.len()).collect();
        let leaves = bisect(all, sinks, self.cfg.leaf_fanout);
        let mut level: Vec<Cluster> = leaves.into_iter().map(Cluster::Leaf).collect();
        while level.len() > 1 {
            // group cluster centroids geometrically with branch fanout
            let cents: Vec<Point> = level.iter().map(|c| c.centroid(sinks)).collect();
            let idx: Vec<usize> = (0..level.len()).collect();
            let groups = bisect(idx, &cents, self.cfg.branch_fanout);
            let mut next: Vec<Cluster> = Vec::with_capacity(groups.len());
            // drain `level` by index without disturbing order
            let mut taken: Vec<Option<Cluster>> = level.into_iter().map(Some).collect();
            for g in groups {
                let members: Vec<Cluster> = g
                    .into_iter()
                    .map(|i| taken[i].take().expect("each cluster grouped once"))
                    .collect();
                next.push(Cluster::Internal(members));
            }
            level = next;
        }
        let top = level.pop().expect("one root cluster");

        // 2. materialize top-down: every cluster gets an inverter pair
        let mid_cell = CellId(lib.cells().len() / 2);
        let root = tree.root();
        self.place_cluster(&mut tree, lib, fp, &top, sinks, root, mid_cell);

        // 3. repeater pairs on long edges
        self.insert_repeaters(&mut tree, lib, fp, mid_cell);

        // 4. load-aware sizing, leaves up
        self.size_buffers(&mut tree, lib);

        tree
    }

    /// Creates the inverter pair of `cluster` under `parent` and recurses.
    #[allow(clippy::too_many_arguments)]
    fn place_cluster(
        &self,
        tree: &mut ClockTree,
        lib: &Library,
        fp: &Floorplan,
        cluster: &Cluster,
        sinks: &[Point],
        parent: NodeId,
        cell: CellId,
    ) {
        let c = cluster.centroid(sinks);
        let pa = fp.legalize(c);
        let pb = fp.legalize(pa.offset(um_to_dbu(self.cfg.pair_gap_um), 0));
        let inv_a = tree.add_node(NodeKind::Buffer(cell), pa, parent);
        let inv_b = tree.add_node(NodeKind::Buffer(cell), pb, inv_a);
        let _ = lib;
        match cluster {
            Cluster::Leaf(idx) => {
                for &i in idx {
                    tree.add_node(NodeKind::Sink, sinks[i], inv_b);
                }
            }
            Cluster::Internal(children) => {
                for ch in children {
                    self.place_cluster(tree, lib, fp, ch, sinks, inv_b, cell);
                }
            }
        }
    }

    /// Splits any too-long edge with repeater pairs (polarity-preserving).
    fn insert_repeaters(&self, tree: &mut ClockTree, lib: &Library, fp: &Floorplan, cell: CellId) {
        let _ = lib;
        let limit = self.cfg.max_unbuffered_um;
        // collect long edges first; insertion adds only short edges
        let long: Vec<NodeId> = tree
            .node_ids()
            .filter(|&id| {
                tree.node(id)
                    .route
                    .as_ref()
                    .is_some_and(|r| r.length_um() > limit)
            })
            .collect();
        for child in long {
            let parent = tree.parent(child).expect("routed node has parent");
            let route = tree.node(child).route.clone().expect("checked above");
            let n_pairs = (route.length_um() / limit).floor() as usize;
            if n_pairs == 0 {
                continue;
            }
            let arc = Arc {
                from: parent,
                to: child,
                interior: Vec::new(),
            };
            rebuild_arc_legalized(tree, &arc, cell, 2 * n_pairs, route, fp)
                .expect("route endpoints unchanged");
        }
    }

    /// Sizes every buffer so its load fits with margin, processing leaves
    /// first so upstream loads see final input caps.
    fn size_buffers(&self, tree: &mut ClockTree, lib: &Library) {
        let wire = lib.wire_rc(self.cfg.sizing_corner);
        // reverse BFS order = children before parents
        let order: Vec<NodeId> = {
            let mut bfs = vec![tree.root()];
            let mut i = 0;
            while i < bfs.len() {
                let n = bfs[i];
                bfs.extend_from_slice(tree.children(n));
                i += 1;
            }
            bfs.into_iter().rev().collect()
        };
        for id in order {
            if !matches!(tree.node(id).kind, NodeKind::Buffer(_)) {
                continue;
            }
            let mut load = 0.0;
            for &ch in tree.children(id) {
                let r = tree.node(ch).route.as_ref().expect("child has route");
                load += r.length_um() * wire.c_per_um;
                load += match tree.node(ch).kind {
                    NodeKind::Buffer(c) => lib.cell(c).input_cap_ff,
                    NodeKind::Sink => lib.sink_cap_ff(),
                    // clk-analyze: allow(A005) a routed child is never the source node
                    NodeKind::Source => unreachable!(),
                };
            }
            let need = load * self.cfg.sizing_margin;
            let chosen = lib
                .cells()
                .iter()
                .position(|c| c.max_cap_ff >= need)
                .unwrap_or(lib.cells().len() - 1);
            tree.set_cell(id, CellId(chosen)).expect("id is a buffer");
        }
    }
}

/// Recursive median bisection of `items` (indices into `pts`) until every
/// group has at most `max_size` members. Splits along the longer bbox axis.
fn bisect(items: Vec<usize>, pts: &[Point], max_size: usize) -> Vec<Vec<usize>> {
    assert!(max_size >= 1);
    if items.len() <= max_size {
        return vec![items];
    }
    let bbox = Rect::bounding(&items.iter().map(|&i| pts[i]).collect::<Vec<_>>())
        .expect("non-empty group");
    let horizontal = bbox.width() >= bbox.height();
    let mut sorted = items;
    sorted.sort_by_key(|&i| {
        if horizontal {
            (pts[i].x, pts[i].y)
        } else {
            (pts[i].y, pts[i].x)
        }
    });
    let mid = sorted.len() / 2;
    let right = sorted.split_off(mid);
    let mut out = bisect(sorted, pts, max_size);
    out.extend(bisect(right, pts, max_size));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_liberty::StdCorners;

    fn lib() -> Library {
        Library::synthetic_28nm(StdCorners::c0_c1_c3())
    }

    fn grid_sinks(n_side: usize, pitch_um: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| {
                Point::from_um(
                    60.0 + (i % n_side) as f64 * pitch_um,
                    60.0 + (i / n_side) as f64 * pitch_um,
                )
            })
            .collect()
    }

    #[test]
    fn bisect_respects_max_size() {
        let pts = grid_sinks(7, 30.0);
        let groups = bisect((0..pts.len()).collect(), &pts, 6);
        assert!(groups.iter().all(|g| g.len() <= 6 && !g.is_empty()));
        let total: usize = groups.iter().map(std::vec::Vec::len).sum();
        assert_eq!(total, 49);
    }

    #[test]
    fn synthesize_produces_valid_polarized_tree() {
        let lib = lib();
        let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 700.0, 700.0), vec![]);
        let sinks = grid_sinks(8, 70.0);
        let tree = CtsEngine::default().synthesize(&lib, &fp, Point::from_um(350.0, 0.0), &sinks);
        tree.validate().unwrap();
        assert_eq!(tree.sinks().count(), 64);
        for s in tree.sinks().collect::<Vec<_>>() {
            assert_eq!(tree.inversions_to(s) % 2, 0, "sink {s} sees inverted clock");
        }
    }

    #[test]
    fn long_edges_get_repeaters() {
        let lib = lib();
        let fp = Floorplan::open(Rect::from_um(0.0, 0.0, 2000.0, 2000.0));
        // two sinks very far from the source force long top-level edges
        let sinks = vec![
            Point::from_um(1800.0, 1800.0),
            Point::from_um(1750.0, 1850.0),
        ];
        let tree = CtsEngine::default().synthesize(&lib, &fp, Point::from_um(0.0, 0.0), &sinks);
        tree.validate().unwrap();
        let max_edge = tree
            .node_ids()
            .filter_map(|id| {
                tree.node(id)
                    .route
                    .as_ref()
                    .map(clk_route::RoutePath::length_um)
            })
            .fold(0.0, f64::max);
        assert!(
            max_edge <= CtsConfig::default().max_unbuffered_um * 1.01,
            "edge of {max_edge} um survived repeatering"
        );
    }

    #[test]
    fn sizing_prevents_cap_violations() {
        let lib = lib();
        let fp = Floorplan::utilized(Rect::from_um(0.0, 0.0, 900.0, 900.0), vec![]);
        let sinks = grid_sinks(9, 90.0);
        let tree = CtsEngine::default().synthesize(&lib, &fp, Point::from_um(450.0, 0.0), &sinks);
        let timing =
            clk_sta::Timer::golden().analyze(&tree, &lib, CtsConfig::default().sizing_corner);
        let cap_viols = timing
            .violations()
            .iter()
            .filter(|v| matches!(v, clk_sta::Violation::MaxCap { .. }))
            .count();
        assert_eq!(cap_viols, 0, "violations: {:?}", timing.violations());
    }

    #[test]
    fn single_sink_works() {
        let lib = lib();
        let fp = Floorplan::open(Rect::from_um(0.0, 0.0, 100.0, 100.0));
        let tree = CtsEngine::default().synthesize(
            &lib,
            &fp,
            Point::from_um(0.0, 0.0),
            &[Point::from_um(90.0, 90.0)],
        );
        tree.validate().unwrap();
        assert_eq!(tree.sinks().count(), 1);
    }
}
