//! Performance-attribution snapshot & diff tool.
//!
//! Two modes share one snapshot format:
//!
//! *Run mode* (default) executes the flow suite with the profiler on,
//! captures each case's attribution tree (micro-timers), span tree
//! (derived from the JSONL trace), counters and histogram quantiles,
//! and writes a `profile.json` snapshot plus a folded-stack
//! `flame.folded` (speedscope / inferno compatible). It enforces the
//! attribution coverage floor (children of `lp.solve`, worker
//! `local.eval` subtrees vs `local.batch` wall) and the metrics
//! dictionary, and — with `--overhead` — measures and gates the cost
//! of profiling itself (suite wall with the profiler on vs off).
//!
//! *Diff mode* (`--base A --cur B`) compares two snapshots with
//! `clk-qor` noise-band verdicts: counters and attribution *counts*
//! are deterministic for a fixed seed, so they gate exactly (any count
//! drift is `REGRESSED` when it grows, `improved` when it shrinks);
//! durations and quantiles are informational. Two identical-seed runs
//! therefore diff to zero regressions — the CI self-check.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin trace-diff -- --quick --overhead
//! cargo run --release -p clk-bench --bin trace-diff -- \
//!     --base profile-base.json --cur profile.json --md attribution.md
//! ```
//!
//! Flags: `--quick`, `--seed N`, `--sinks N`, `--out PATH`,
//! `--flame PATH`, `--md PATH`, `--overhead`, `--overhead-tol PCT`
//! (default 3), `--coverage-tol FRAC` (default 0.9), `--base PATH`,
//! `--cur PATH`.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::fmt::Write as _;
use std::process::ExitCode;

use clk_bench::{suite_cases, ExpArgs, PreparedCase};
use clk_obs::profile::{to_folded, tree_from_jsonl};
use clk_obs::{dict, AttrNode, Level, MetricValue, Obs, ObsConfig, SharedBuf, Value};
use clk_qor::{Direction, Tolerance, Verdict};
use clk_skewopt::Flow;

/// A phase node whose total is below this is too small to attribute
/// meaningfully; the coverage gate skips it.
const COVERAGE_MIN_MS: f64 = 5.0;

struct Args {
    exp: ExpArgs,
    out: Option<String>,
    flame: String,
    md: Option<String>,
    overhead: bool,
    overhead_tol: f64,
    coverage_tol: f64,
    base: Option<String>,
    cur: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    Args {
        exp: ExpArgs::parse(),
        out: flag_val("--out"),
        flame: flag_val("--flame").unwrap_or_else(|| "flame.folded".to_string()),
        md: flag_val("--md"),
        overhead: argv.iter().any(|a| a == "--overhead"),
        overhead_tol: flag_val("--overhead-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(3.0),
        coverage_tol: flag_val("--coverage-tol")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.9),
        base: flag_val("--base"),
        cur: flag_val("--cur"),
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Everything captured from one profiled case run.
struct CaseProfile {
    id: String,
    runtime_ms: f64,
    profile: AttrNode,
    spans: AttrNode,
    counters: Vec<(String, u64)>,
    hists: Vec<(String, HistQ)>,
}

struct HistQ {
    count: u64,
    sum: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn num(v: f64) -> Value {
    Value::Num(v)
}

impl CaseProfile {
    fn to_value(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        let hists = Value::Obj(
            self.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("count".to_string(), Value::from(h.count)),
                            ("sum".to_string(), num(h.sum)),
                            ("p50".to_string(), num(h.p50)),
                            ("p95".to_string(), num(h.p95)),
                            ("p99".to_string(), num(h.p99)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("id".to_string(), Value::from(self.id.as_str())),
            ("runtime_ms".to_string(), num(self.runtime_ms)),
            ("profile".to_string(), self.profile.to_json()),
            ("spans".to_string(), self.spans.to_json()),
            ("counters".to_string(), counters),
            ("hists".to_string(), hists),
        ])
    }

    fn from_value(v: &Value) -> Option<Self> {
        let id = v.get("id")?.as_str()?.to_string();
        let runtime_ms = v.get("runtime_ms")?.as_f64()?;
        let profile = AttrNode::from_json(v.get("profile")?)?;
        let spans = AttrNode::from_json(v.get("spans")?)?;
        let obj_pairs = |key: &str| -> Vec<(String, Value)> {
            match v.get(key) {
                Some(Value::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            }
        };
        let counters = obj_pairs("counters")
            .into_iter()
            .filter_map(|(k, v)| Some((k, v.as_u64()?)))
            .collect();
        let hists = obj_pairs("hists")
            .into_iter()
            .filter_map(|(k, h)| {
                Some((
                    k,
                    HistQ {
                        count: h.get("count")?.as_u64()?,
                        sum: h.get("sum")?.as_f64()?,
                        p50: h.get("p50")?.as_f64()?,
                        p95: h.get("p95")?.as_f64()?,
                        p99: h.get("p99")?.as_f64()?,
                    },
                ))
            })
            .collect();
        Some(CaseProfile {
            id,
            runtime_ms,
            profile,
            spans,
            counters,
            hists,
        })
    }
}

struct ProfileSnapshot {
    git_rev: String,
    seed: u64,
    suite: String,
    cases: Vec<CaseProfile>,
}

impl ProfileSnapshot {
    fn to_json_pretty(&self) -> String {
        let v = Value::Obj(vec![
            ("schema".to_string(), Value::from(1u64)),
            ("tool".to_string(), Value::from("trace-diff")),
            ("git_rev".to_string(), Value::from(self.git_rev.as_str())),
            ("seed".to_string(), Value::from(self.seed)),
            ("suite".to_string(), Value::from(self.suite.as_str())),
            (
                "cases".to_string(),
                Value::Arr(self.cases.iter().map(CaseProfile::to_value).collect()),
            ),
        ]);
        let mut s = v.to_json();
        s.push('\n');
        s
    }

    fn parse_str(text: &str) -> Result<Self, String> {
        let v = clk_obs::json::parse(text)?;
        if v.get("tool").and_then(Value::as_str) != Some("trace-diff") {
            return Err("not a trace-diff snapshot".to_string());
        }
        let cases = v
            .get("cases")
            .and_then(Value::as_arr)
            .ok_or("missing cases")?
            .iter()
            .map(CaseProfile::from_value)
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed case record")?;
        Ok(ProfileSnapshot {
            git_rev: v
                .get("git_rev")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
            suite: v
                .get("suite")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            cases,
        })
    }
}

fn flow_config(exp: &ExpArgs) -> clk_skewopt::FlowConfig {
    if exp.quick {
        clockvar_workbench::quick_flow_config()
    } else {
        let mut cfg = clk_skewopt::FlowConfig::default();
        cfg.global.max_pairs = 120;
        cfg.local.max_iterations = 12;
        cfg.train.n_cases = 60;
        cfg.train.moves_per_case = 60;
        cfg
    }
}

/// Runs one prepared case with (or without) profiling; returns the
/// captured profile when profiling was on.
fn run_case(
    prep: &PreparedCase,
    cfg_base: &clk_skewopt::FlowConfig,
    profiled: bool,
) -> Result<(Option<CaseProfile>, f64), String> {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        profile: profiled,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);
    let mut cfg = cfg_base.clone();
    cfg.obs = obs.clone();
    let (_, runtime_ms) = prep
        .run(Flow::GlobalLocal, &cfg)
        .map_err(|e| format!("{} flow failed: {e}", prep.case.kind.name()))?;
    obs.flush();
    if !profiled {
        return Ok((None, runtime_ms));
    }
    let snap = obs.metrics_snapshot().unwrap_or_default();
    let undeclared = dict::check_snapshot(&snap);
    if !undeclared.is_empty() {
        return Err(format!(
            "metrics dictionary violations:\n  {}",
            undeclared.join("\n  ")
        ));
    }
    let mut counters = Vec::new();
    let mut hists = Vec::new();
    for (name, v) in &snap {
        match v {
            MetricValue::Counter(c) => counters.push((name.clone(), *c)),
            MetricValue::Gauge(_) => {}
            MetricValue::Histogram(h) => hists.push((
                name.clone(),
                HistQ {
                    count: h.count,
                    sum: h.sum,
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            )),
        }
    }
    Ok((
        Some(CaseProfile {
            id: prep.case.kind.name().to_string(),
            runtime_ms,
            profile: obs.profiler().tree(),
            spans: tree_from_jsonl(&buf.contents()),
            counters,
            hists,
        }),
        runtime_ms,
    ))
}

/// Measures the cost of one profiler scope (enter + drop) with a
/// calibration loop on a live profiler.
///
/// Suite wall on-vs-off is *reported* but not gated: on a shared
/// machine two identical suite runs differ by several percent, far
/// above real profiler cost, so that difference is noise, not signal.
/// The gated estimate — measured per-scope cost times the exact scope
/// count the run recorded — is deterministic up to timer resolution
/// and grows exactly when someone drops a scope into a hot loop, which
/// is the regression the gate exists to catch.
fn per_scope_cost_ns() -> f64 {
    let prof = clk_obs::Profiler::enabled();
    const N: u32 = 200_000;
    // warm the arena so calibration measures the steady state
    for _ in 0..1000 {
        let _g = prof.scope("calibrate");
    }
    let start = clk_obs::wall_now();
    for _ in 0..N {
        let _outer = prof.scope("calibrate");
        let _inner = prof.scope("calibrate.inner");
    }
    // two scopes per iteration
    start.elapsed().as_nanos() as f64 / f64::from(N) / 2.0
}

/// Total scope enters recorded in an attribution tree.
fn scope_calls(root: &AttrNode) -> u64 {
    let mut rows = Vec::new();
    flatten(root, "", &mut rows);
    rows.iter().map(|(_, n)| n.count).sum()
}

/// Checks the attribution coverage floors on one case; returns
/// human-readable failures.
fn coverage_failures(cp: &CaseProfile, tol: f64) -> Vec<String> {
    let mut fails = Vec::new();
    if let Some(lp) = cp.profile.find("lp.solve") {
        if lp.total_ms() >= COVERAGE_MIN_MS {
            let cov = lp.coverage();
            println!("  {}: lp.solve coverage {:.1}%", cp.id, cov * 100.0);
            if cov < tol {
                fails.push(format!(
                    "{}: lp.solve attribution {:.1}% < {:.0}%",
                    cp.id,
                    cov * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    if let Some(batch) = cp.profile.find("local.batch") {
        if batch.total_ms() >= COVERAGE_MIN_MS {
            // worker `local.eval` subtrees root at top level; with
            // parallel workers their summed wall may exceed the batch
            // wall, which still counts as full coverage
            let eval_ns = cp.profile.total_ns_of("local.eval");
            let cov = eval_ns as f64 / batch.total_ns as f64;
            println!("  {}: local.batch coverage {:.1}%", cp.id, cov * 100.0);
            if cov < tol {
                fails.push(format!(
                    "{}: local.batch attribution {:.1}% < {:.0}%",
                    cp.id,
                    cov * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    fails
}

/// Flattens an attribution tree into `(path, node)` rows, depth-first.
fn flatten<'a>(node: &'a AttrNode, prefix: &str, out: &mut Vec<(String, &'a AttrNode)>) {
    for c in &node.children {
        let path = if prefix.is_empty() {
            c.name.clone()
        } else {
            format!("{prefix};{}", c.name)
        };
        out.push((path.clone(), c));
        flatten(c, &path, out);
    }
}

/// Markdown attribution table for one run snapshot.
fn attribution_md(snap: &ProfileSnapshot) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Attribution — suite {}, seed {}, rev {}\n",
        snap.suite, snap.seed, snap.git_rev
    );
    for cp in &snap.cases {
        let _ = writeln!(md, "## {} ({:.1} ms)\n", cp.id, cp.runtime_ms);
        let _ = writeln!(md, "| node | count | total ms | self ms | of run |");
        let _ = writeln!(md, "|---|---:|---:|---:|---:|");
        let mut rows = Vec::new();
        flatten(&cp.profile, "", &mut rows);
        for (path, n) in rows {
            let _ = writeln!(
                md,
                "| `{path}` | {} | {:.2} | {:.2} | {:.1}% |",
                n.count,
                n.total_ms(),
                n.self_ms(),
                n.total_ms() / cp.runtime_ms.max(1e-9) * 100.0
            );
        }
        md.push('\n');
    }
    md
}

/// One compared value in a snapshot diff.
struct ProfDelta {
    key: String,
    base: f64,
    cur: f64,
    verdict: Verdict,
}

fn verdict_of(base: f64, cur: f64, tol: Tolerance) -> Verdict {
    if matches!(tol.direction, Direction::Info) {
        return Verdict::Info;
    }
    let band = tol.band(base);
    let worse = match tol.direction {
        Direction::LowerBetter => cur - base,
        Direction::HigherBetter => base - cur,
        Direction::Info => 0.0,
    };
    if worse > band {
        Verdict::Regressed
    } else if worse < -band {
        Verdict::Improved
    } else {
        Verdict::Neutral
    }
}

/// Collects gated + informational deltas for one case pair.
fn diff_case(base: &CaseProfile, cur: &CaseProfile, out: &mut Vec<ProfDelta>) {
    let exact = Tolerance {
        rel: 0.0,
        abs: 0.0,
        direction: Direction::LowerBetter,
    };
    let info = Tolerance {
        rel: 0.0,
        abs: 0.0,
        direction: Direction::Info,
    };
    let id = &base.id;
    let mut push = |key: String, b: f64, c: f64, tol: Tolerance| {
        out.push(ProfDelta {
            key,
            base: b,
            cur: c,
            verdict: verdict_of(b, c, tol),
        });
    };
    // counters: deterministic per seed, gate exactly
    let mut names: Vec<&String> = base.counters.iter().map(|(k, _)| k).collect();
    names.extend(cur.counters.iter().map(|(k, _)| k));
    names.sort();
    names.dedup();
    let ctr = |cp: &CaseProfile, name: &str| -> f64 {
        cp.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |(_, v)| *v as f64)
    };
    for name in names {
        push(
            format!("{id}/counter.{name}"),
            ctr(base, name),
            ctr(cur, name),
            exact,
        );
    }
    // attribution trees: counts gate (shape & counts are deterministic),
    // durations inform
    for (label, tb, tc) in [
        ("prof", &base.profile, &cur.profile),
        ("span", &base.spans, &cur.spans),
    ] {
        let (mut rb, mut rc) = (Vec::new(), Vec::new());
        flatten(tb, "", &mut rb);
        flatten(tc, "", &mut rc);
        let mut paths: Vec<&String> = rb.iter().map(|(p, _)| p).collect();
        paths.extend(rc.iter().map(|(p, _)| p));
        paths.sort();
        paths.dedup();
        let node = |rows: &[(String, &AttrNode)], p: &str| -> (f64, f64) {
            rows.iter()
                .find(|(q, _)| q == p)
                .map_or((0.0, 0.0), |(_, n)| (n.count as f64, n.total_ms()))
        };
        for p in paths {
            let (bc, bt) = node(&rb, p);
            let (cc, ct) = node(&rc, p);
            push(format!("{id}/{label}.{p}.count"), bc, cc, exact);
            push(format!("{id}/{label}.{p}.total_ms"), bt, ct, info);
        }
    }
    // histogram sample counts gate; quantiles inform
    let mut hnames: Vec<&String> = base.hists.iter().map(|(k, _)| k).collect();
    hnames.extend(cur.hists.iter().map(|(k, _)| k));
    hnames.sort();
    hnames.dedup();
    fn hist<'a>(cp: &'a CaseProfile, name: &str) -> Option<&'a HistQ> {
        cp.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }
    for name in hnames {
        let b = hist(base, name);
        let c = hist(cur, name);
        let count = |h: Option<&HistQ>| h.map_or(0.0, |h| h.count as f64);
        push(format!("{id}/hist.{name}.count"), count(b), count(c), exact);
        for (q, get) in [
            ("p50", (|h: &HistQ| h.p50) as fn(&HistQ) -> f64),
            ("p95", |h| h.p95),
            ("p99", |h| h.p99),
        ] {
            push(
                format!("{id}/hist.{name}.{q}"),
                b.map_or(0.0, get),
                c.map_or(0.0, get),
                info,
            );
        }
    }
    push(
        format!("{id}/runtime_ms"),
        base.runtime_ms,
        cur.runtime_ms,
        info,
    );
}

fn diff_md(base: &ProfileSnapshot, cur: &ProfileSnapshot, deltas: &[ProfDelta]) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Profile diff — base {} vs cur {}\n",
        base.git_rev, cur.git_rev
    );
    let _ = writeln!(md, "| metric | base | cur | change | verdict |");
    let _ = writeln!(md, "|---|---:|---:|---:|---|");
    for d in deltas {
        // keep the table readable: gated rows that moved, plus the
        // big time movers
        let moved = (d.cur - d.base).abs() > 1e-9;
        let gated = !matches!(d.verdict, Verdict::Info);
        let big_time = d.key.ends_with(".total_ms") && (d.cur - d.base).abs() >= 1.0;
        let keep = (gated && moved) || big_time || d.key.ends_with("/runtime_ms");
        if !keep {
            continue;
        }
        let rel = if d.base.abs() > f64::EPSILON {
            format!("{:+.1}%", (d.cur - d.base) / d.base.abs() * 100.0)
        } else {
            "new".to_string()
        };
        let _ = writeln!(
            md,
            "| `{}` | {:.2} | {:.2} | {} | {} |",
            d.key,
            d.base,
            d.cur,
            rel,
            d.verdict.as_str()
        );
    }
    md
}

fn write_file(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("FAIL: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

fn run_mode(args: &Args) -> Result<ExitCode, ExitCode> {
    let exp = &args.exp;
    let n = exp.sinks.unwrap_or(if exp.quick { 48 } else { 128 });
    let suite = if exp.quick { "quick" } else { "full" };
    let cfg_base = flow_config(exp);
    println!(
        "trace-diff: profiling suite '{suite}', seed {}, {n} sinks/testcase",
        exp.seed
    );
    let mut snap = ProfileSnapshot {
        git_rev: git_rev(),
        seed: exp.seed,
        suite: suite.to_string(),
        cases: Vec::new(),
    };
    let (mut wall_on, mut wall_off) = (0.0f64, 0.0f64);
    for case in suite_cases(exp.seed) {
        let prep = PreparedCase::generate(case, n, &cfg_base, &[Flow::GlobalLocal]);
        if args.overhead {
            // plain run first so allocator/page-cache warmup is not
            // billed to the profiler
            let (_, ms) = run_case(&prep, &cfg_base, false).map_err(|e| {
                eprintln!("FAIL: {e}");
                ExitCode::FAILURE
            })?;
            wall_off += ms;
        }
        let (cp, ms) = run_case(&prep, &cfg_base, true).map_err(|e| {
            eprintln!("FAIL: {e}");
            ExitCode::FAILURE
        })?;
        wall_on += ms;
        let cp = cp.expect("profiled run returns a capture");
        println!(
            "  {:<8} {:>7.1} ms  profile root {} children",
            cp.id,
            ms,
            cp.profile.children.len()
        );
        snap.cases.push(cp);
    }

    // gates: coverage floors and (opt-in) profiler overhead
    let mut fails: Vec<String> = Vec::new();
    println!(
        "\nattribution coverage (floor {:.0}%):",
        args.coverage_tol * 100.0
    );
    for cp in &snap.cases {
        fails.extend(coverage_failures(cp, args.coverage_tol));
    }
    if args.overhead {
        // wall on-vs-off is informational only: same-machine suite
        // runs jitter by more than real profiler cost (see
        // `per_scope_cost_ns`)
        let delta = wall_on - wall_off;
        let pct = if wall_off > 0.0 {
            delta / wall_off * 100.0
        } else {
            0.0
        };
        println!("suite wall: profiled {wall_on:.1} ms, plain {wall_off:.1} ms ({pct:+.2}%)");
        let cost_ns = per_scope_cost_ns();
        let calls: u64 = snap.cases.iter().map(|c| scope_calls(&c.profile)).sum();
        let est_ms = calls as f64 * cost_ns / 1e6;
        let est_pct = if wall_on > 0.0 {
            est_ms / wall_on * 100.0
        } else {
            0.0
        };
        println!(
            "profiler overhead: {calls} scopes x {cost_ns:.0} ns = {est_ms:.1} ms ({est_pct:.3}% of profiled wall)"
        );
        if est_pct > args.overhead_tol {
            fails.push(format!(
                "profiler overhead {est_pct:.3}% exceeds {:.1}%",
                args.overhead_tol
            ));
        }
    }

    let out = args.out.as_deref().unwrap_or("profile.json");
    write_file(out, &snap.to_json_pretty())?;
    println!("snapshot written to {out}");
    // one folded stack per suite: each case becomes a root frame
    let mut flame_root = AttrNode::root();
    for cp in &snap.cases {
        let mut case_node = cp.profile.clone();
        case_node.name = cp.id.clone();
        flame_root.children.push(case_node);
    }
    write_file(&args.flame, &to_folded(&flame_root))?;
    println!(
        "folded stacks written to {} (speedscope / inferno)",
        args.flame
    );
    if let Some(md) = &args.md {
        write_file(md, &attribution_md(&snap))?;
        println!("attribution table written to {md}");
    }

    if fails.is_empty() {
        println!("trace-diff: run gates clean");
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &fails {
            eprintln!("FAIL: {f}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn diff_mode(args: &Args, base_path: &str, cur_path: &str) -> Result<ExitCode, ExitCode> {
    let load = |path: &str| -> Result<ProfileSnapshot, ExitCode> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("FAIL: cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        ProfileSnapshot::parse_str(&text).map_err(|e| {
            eprintln!("FAIL: {path} does not parse: {e}");
            ExitCode::FAILURE
        })
    };
    let base = load(base_path)?;
    let cur = load(cur_path)?;
    if base.suite != cur.suite || base.seed != cur.seed {
        eprintln!(
            "FAIL: snapshot mismatch: base is suite '{}' seed {}, cur is suite '{}' seed {}",
            base.suite, base.seed, cur.suite, cur.seed
        );
        return Ok(ExitCode::FAILURE);
    }
    let mut deltas: Vec<ProfDelta> = Vec::new();
    for bc in &base.cases {
        match cur.cases.iter().find(|c| c.id == bc.id) {
            Some(cc) => diff_case(bc, cc, &mut deltas),
            None => {
                eprintln!("FAIL: case {} missing from {cur_path}", bc.id);
                return Ok(ExitCode::FAILURE);
            }
        }
    }

    let out = args.out.as_deref().unwrap_or("profile-diff.json");
    let doc = Value::Obj(vec![
        ("schema".to_string(), Value::from(1u64)),
        ("tool".to_string(), Value::from("trace-diff")),
        ("base_rev".to_string(), Value::from(base.git_rev.as_str())),
        ("cur_rev".to_string(), Value::from(cur.git_rev.as_str())),
        (
            "regressed".to_string(),
            Value::from(
                deltas
                    .iter()
                    .filter(|d| d.verdict == Verdict::Regressed)
                    .count(),
            ),
        ),
        (
            "deltas".to_string(),
            Value::Arr(
                deltas
                    .iter()
                    .map(|d| {
                        Value::Obj(vec![
                            ("key".to_string(), Value::from(d.key.as_str())),
                            ("base".to_string(), num(d.base)),
                            ("cur".to_string(), num(d.cur)),
                            ("verdict".to_string(), Value::from(d.verdict.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_file(out, &format!("{}\n", doc.to_json()))?;
    println!("diff written to {out}");
    if let Some(md) = &args.md {
        write_file(md, &diff_md(&base, &cur, &deltas))?;
        println!("markdown table written to {md}");
    }

    let regressed: Vec<&ProfDelta> = deltas
        .iter()
        .filter(|d| d.verdict == Verdict::Regressed)
        .collect();
    let improved = deltas
        .iter()
        .filter(|d| d.verdict == Verdict::Improved)
        .count();
    println!(
        "compared {} values: {} regressed, {improved} improved",
        deltas.len(),
        regressed.len()
    );
    if regressed.is_empty() {
        println!("trace-diff: no count drift vs base");
        Ok(ExitCode::SUCCESS)
    } else {
        for d in regressed.iter().take(40) {
            eprintln!("REGRESSED {}: {} -> {}", d.key, d.base, d.cur);
        }
        eprintln!("FAIL: {} gated values drifted", regressed.len());
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match (&args.base, &args.cur) {
        (Some(b), Some(c)) => diff_mode(&args, &b.clone(), &c.clone()),
        (None, None) => run_mode(&args),
        _ => {
            eprintln!("FAIL: --base and --cur must be given together");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) | Err(code) => code,
    }
}
