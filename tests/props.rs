//! Property-based tests of cross-crate invariants.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use proptest::prelude::*;

use clk_geom::{Point, Rect};
use clk_liberty::{CellId, Library, StdCorners};
use clk_netlist::{ClockTree, Floorplan, NodeKind};
use clk_route::{rsmt, single_trunk, RoutePath};
use clk_sta::{alpha_factors, variation_report};

fn arb_point() -> impl Strategy<Value = Point> {
    (0i64..500_000, 0i64..500_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any Steiner topology must connect all pins, never beat the HPWL
    /// lower bound, and never exceed the star upper bound.
    #[test]
    fn steiner_trees_are_bounded(driver in arb_point(), pins in prop::collection::vec(arb_point(), 1..9)) {
        let mut all = vec![driver];
        all.extend_from_slice(&pins);
        let bbox = Rect::bounding(&all).unwrap();
        let hpwl = clk_geom::dbu_to_um(bbox.width() + bbox.height());
        let star: f64 = pins.iter().map(|&p| driver.manhattan_um(p)).sum();
        // rsmt is MST-based: never longer than the star topology
        for (tree, cap) in [(rsmt(driver, &pins), star), (single_trunk(driver, &pins), 2.0 * star)] {
            for &p in &pins {
                prop_assert!(tree.index_of(p).is_some());
            }
            let len = tree.wirelength_um();
            prop_assert!(len + 1e-9 >= hpwl, "len {len} < hpwl {hpwl}");
            // single-trunk may exceed the star on adversarial pin sets
            // (wire is forced through the median trunk), but never 2x
            prop_assert!(len <= cap + 1e-6, "len {len} > cap {cap}");
        }
    }

    /// Detoured routes deliver exactly the requested extra length.
    #[test]
    fn detours_are_exact(a in arb_point(), b in arb_point(), extra_um in 0.0f64..300.0) {
        let r = RoutePath::with_detour(a, b, extra_um);
        prop_assert!(r.is_valid());
        let want = a.manhattan(b) + clk_geom::um_to_dbu(extra_um);
        prop_assert!((r.length_dbu() - want).abs() <= 1);
    }

    /// Legalization always produces a legal location and is idempotent.
    #[test]
    fn legalizer_contract(p in arb_point()) {
        let fp = Floorplan::utilized(
            Rect::from_um(0.0, 0.0, 500.0, 500.0),
            vec![Rect::from_um(100.0, 100.0, 180.0, 220.0)],
        );
        let l = fp.legalize(p);
        prop_assert!(fp.is_legal(l));
        prop_assert_eq!(fp.legalize(l), l);
    }

    /// A random sequence of tree edits preserves structural validity and
    /// sink polarity parity can only change via buffer insertion/removal.
    #[test]
    fn tree_edits_preserve_validity(ops in prop::collection::vec((0u8..4, 0usize..16, arb_point()), 1..30)) {
        let cell = CellId(2);
        let mut tree = ClockTree::new(Point::new(0, 0), cell);
        let b0 = tree.add_node(NodeKind::Buffer(cell), Point::new(10_000, 0), tree.root());
        let _s = tree.add_node(NodeKind::Sink, Point::new(20_000, 0), b0);
        for (op, pick, loc) in ops {
            let buffers: Vec<_> = tree.buffers().collect();
            let target = buffers[pick % buffers.len()];
            match op {
                0 => {
                    let _ = tree.add_node(NodeKind::Buffer(cell), loc, target);
                }
                1 => {
                    let _ = tree.move_node(target, loc);
                }
                2 => {
                    // surgery to any other buffer that is not a descendant
                    let cand = buffers[(pick / 2) % buffers.len()];
                    if cand != target && tree.parent(target).is_some() {
                        let _ = tree.set_parent(target, cand);
                    }
                }
                _ => {
                    // never remove the last buffer above the sink
                    if buffers.len() > 1 && tree.parent(target).is_some() {
                        let _ = tree.remove_buffer(target);
                    }
                }
            }
            prop_assert!(tree.validate().is_ok(), "validate failed after op {op}");
        }
    }

    /// Scaling one corner's skews by a constant leaves the normalized
    /// variation report unchanged (the α normalization at work).
    #[test]
    fn variation_invariant_under_corner_scaling(
        base in prop::collection::vec(-200.0f64..200.0, 1..40),
        scale in 0.2f64..5.0,
    ) {
        let skews0 = vec![base.clone(), base.iter().map(|s| s * 2.0).collect::<Vec<_>>()];
        let skews1 = vec![base.clone(), base.iter().map(|s| s * 2.0 * scale).collect::<Vec<_>>()];
        let r0 = variation_report(&skews0, &alpha_factors(&skews0), None);
        let r1 = variation_report(&skews1, &alpha_factors(&skews1), None);
        prop_assert!((r0.sum - r1.sum).abs() < 1e-6 * (1.0 + r0.sum.abs()));
    }

    /// NLDM lookups stay finite and positive over a wide query envelope,
    /// including extrapolation beyond the characterized axes.
    #[test]
    fn library_lookups_are_robust(slew in 0.5f64..600.0, load in 0.05f64..120.0, cell in 0usize..5, corner in 0usize..4) {
        let lib = Library::synthetic_28nm(StdCorners::all());
        let d = lib.gate_delay(CellId(cell), clk_liberty::CornerId(corner), slew, load);
        let s = lib.gate_output_slew(CellId(cell), clk_liberty::CornerId(corner), slew, load);
        prop_assert!(d.is_finite() && d > 0.0);
        prop_assert!(s.is_finite() && s > 0.0);
    }
}

// ---- corruption injection: the lint engine must catch every planted
// defect class, and must stay silent on freshly generated designs -------

use clk_cts::{Testcase, TestcaseKind};
use clk_lint::{audit_rc_tree, DesignCtx, LintRunner};
use clk_netlist::{NodeId, SinkPair};

/// Picks a buffer that has both a parent and a grandparent.
fn deep_buffer(tree: &ClockTree) -> NodeId {
    tree.buffers()
        .find(|&b| tree.parent(b).and_then(|p| tree.parent(p)).is_some())
        .expect("CTS trees have multi-level buffers")
}

/// A planted defect: (expected stable code, injection).
type Defect = (&'static str, fn(&mut ClockTree));

/// The planted-defect catalogue. Every entry corrupts a clone of a
/// fresh, clean testcase tree.
fn defect_catalogue() -> Vec<Defect> {
    vec![
        // detached child link: parent loses the child, child keeps parent
        ("S001", |t| {
            let b = deep_buffer(t);
            let p = t.parent(b).expect("deep buffer has parent");
            t.debug_unlink_child(p, b);
        }),
        // orphaned subtree: no parent link at all on a non-root node
        ("S002", |t| {
            let b = deep_buffer(t);
            let p = t.parent(b).expect("deep buffer has parent");
            t.debug_unlink_child(p, b);
            t.debug_set_parent_raw(b, None);
        }),
        // cycle: a two-node loop cut loose from the root
        ("S002", |t| {
            let b = deep_buffer(t);
            let p = t.parent(b).expect("deep buffer has parent");
            let g = t.parent(p).expect("deep buffer has grandparent");
            t.debug_unlink_child(g, p);
            t.debug_set_parent_raw(p, Some(b));
            t.debug_add_child_raw(b, p);
        }),
        // a sink with fanout
        ("S003", |t| {
            let sinks: Vec<NodeId> = t.sinks().collect();
            t.debug_add_child_raw(sinks[0], sinks[1]);
        }),
        // node teleported without rerouting: stale route endpoints
        ("G002", |t| {
            let b = deep_buffer(t);
            let l = t.loc(b);
            t.debug_set_loc_raw(b, Point::new(l.x + 7_000, l.y + 13_000));
        }),
        // node teleported outside the die
        ("G003", |t| {
            let b = deep_buffer(t);
            t.debug_set_loc_raw(b, Point::new(-50_000, -50_000));
        }),
        // legal move to an off-grid location (routes stay consistent)
        ("G005", |t| {
            let b = deep_buffer(t);
            let l = t.loc(b);
            t.move_node(b, Point::new(l.x + 1, l.y + 3)).expect("move");
        }),
        // a sink grafted one inverter level up: skipping exactly one
        // inverter of a real sink's chain flips its parity
        ("A005", |t| {
            let s = t.sinks().next().expect("has sinks");
            let p = t.parent(s).expect("sink has parent");
            let g = t.parent(p).expect("leaf driver has parent");
            let l = t.loc(g);
            t.add_node(NodeKind::Sink, Point::new(l.x + 2_000, l.y + 2_000), g);
        }),
        // NaN pair weight
        ("T004", |t| {
            let pair = t.sink_pairs()[0];
            t.set_sink_pairs(vec![SinkPair::with_weight(pair.a, pair.b, f64::NAN)]);
        }),
    ]
}

proptest! {
    // each case runs full CTS generation; keep the count small
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A fresh testcase lints with zero errors, and every entry of the
    /// defect catalogue is caught under its stable diagnostic code.
    #[test]
    fn lint_catches_planted_defects(seed in 0u64..500, kind in 0u8..2) {
        let kind = if kind == 0 { TestcaseKind::Cls1v1 } else { TestcaseKind::Cls2v1 };
        let tc = Testcase::generate(kind, 18, seed);
        let runner = LintRunner::with_default_passes();
        let clean = runner.run(&DesignCtx::with_floorplan(&tc.tree, &tc.lib, &tc.floorplan));
        prop_assert_eq!(clean.error_count(), 0, "fresh design lints dirty:\n{}", clean.to_text());

        let mut caught = std::collections::BTreeSet::new();
        for (code, inject) in defect_catalogue() {
            let mut bad = tc.tree.clone();
            inject(&mut bad);
            let report = runner.run(&DesignCtx::with_floorplan(&bad, &tc.lib, &tc.floorplan));
            prop_assert!(
                report.has_code(code),
                "planted {code} not caught; report:\n{}",
                report.to_text()
            );
            caught.insert(code);
        }
        prop_assert!(caught.len() >= 7, "catalogue covers {caught:?}");
    }

    /// Poisoned parasitics and LP models are caught by the standalone
    /// audits (`R0xx`, `L0xx`) — together with the tree catalogue above
    /// this exercises every diagnostic family.
    #[test]
    fn lint_catches_poisoned_models(bad_cap in -50.0f64..-0.01, nan_kind in 0u8..2) {
        // negative / non-finite parasitics
        let rc = clk_delay::RcTree::from_raw(
            vec![None, Some(0)],
            vec![0.0, 0.4],
            vec![0.5, bad_cap],
        );
        let diags = audit_rc_tree(NodeId(0), &rc);
        prop_assert!(diags.iter().any(|d| d.code == "R002"), "{diags:?}");

        // poisoned LP: NaN bound (L001) or NaN coefficient / rhs (L003)
        let mut p = clk_lp::Problem::new();
        let x = p.add_var(0.0, 10.0, 1.0).unwrap();
        p.add_row(clk_lp::RowKind::Le, 5.0, &[(x, 1.0)]).unwrap();
        let want = if nan_kind == 0 {
            p.debug_poison_bounds(x, f64::NAN, 1.0);
            "L001"
        } else {
            p.debug_poison_coeff(x, 0, f64::NAN).unwrap();
            "L003"
        };
        let out = clk_lint::lp::audit_problem(&p);
        prop_assert!(out.iter().any(|d| d.code == want), "{out:?}");
    }
}

// ---- untrusted-input hardening: the text readers must return typed
// errors (never panic) on damaged input, deterministically, and must
// reject limit-exceeding input outright -------------------------------

use std::sync::OnceLock;

use clk_liberty::text::{parse_liberty, parse_liberty_with_limits, write_liberty};
use clk_liberty::ParseLimits;
use clk_netlist::io::{parse_ctree, parse_ctree_with_limits, write_ctree};

/// Shared well-formed corpus: one Liberty corner and one `.ctree` dump.
fn parser_fixture() -> &'static (String, String, Library) {
    static FIX: OnceLock<(String, String, Library)> = OnceLock::new();
    FIX.get_or_init(|| {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 10, 7);
        let liberty = write_liberty(&tc.lib, clk_liberty::CornerId(0));
        let ctree = write_ctree(&tc.tree, &tc.lib);
        (liberty, ctree, tc.lib.clone())
    })
}

/// Flips one bit and truncates, returning a parseable `&str` mutant.
fn damage(base: &str, flip: usize, bit: u8, cut: usize) -> String {
    let mut bytes = base.as_bytes().to_vec();
    let i = flip % bytes.len();
    bytes[i] ^= 1 << (bit % 8);
    bytes.truncate(1 + cut % bytes.len());
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-flipped and truncated Liberty input parses to `Ok` or a
    /// typed error — never a panic — and the outcome is deterministic
    /// (identical value or identical error, byte offset included).
    #[test]
    fn damaged_liberty_never_panics(flip in 0usize..1_000_000, bit in 0u8..8, cut in 0usize..1_000_000) {
        let (liberty, _, _) = parser_fixture();
        let mutant = damage(liberty, flip, bit, cut);
        let r1 = parse_liberty(&mutant);
        let r2 = parse_liberty(&mutant);
        prop_assert_eq!(r1, r2);
    }

    /// Same contract for `.ctree` input.
    #[test]
    fn damaged_ctree_never_panics(flip in 0usize..1_000_000, bit in 0u8..8, cut in 0usize..1_000_000) {
        let (_, ctree, lib) = parser_fixture();
        let mutant = damage(ctree, flip, bit, cut);
        let r1 = parse_ctree(&mutant, lib);
        let r2 = parse_ctree(&mutant, lib);
        match (r1, r2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(write_ctree(&a, lib), write_ctree(&b, lib)),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "nondeterministic: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Input exceeding any configured limit is always a typed error,
    /// never a panic and never a partial parse.
    #[test]
    fn limit_exceeding_input_is_always_rejected(max_bytes in 1usize..64, which in 0u8..2) {
        let (liberty, ctree, lib) = parser_fixture();
        let limits = ParseLimits { max_bytes, ..ParseLimits::strict() };
        if which == 0 {
            let e = parse_liberty_with_limits(liberty, &limits);
            prop_assert!(e.is_err());
        } else {
            let e = parse_ctree_with_limits(ctree, lib, &limits);
            prop_assert!(e.is_err());
        }
    }
}
