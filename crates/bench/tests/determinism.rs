//! Twice-run determinism gate (ISSUE 6, satellite 1): the same seed
//! must reproduce the exact same QoR snapshot bytes. Wall clock is the
//! only sanctioned difference between reruns, and
//! [`QorSnapshot::canonical_json`] zeroes it out — everything else
//! (variation sums, per-corner skews, LP iteration counts, accept and
//! reject tallies, obs counters) must match to the last byte.

use clk_bench::{suite_cases, PreparedCase};
use clk_netlist::TreeStats;
use clk_obs::{Level, Obs, ObsConfig};
use clk_qor::{QorSnapshot, TestcaseQor};
use clk_skewopt::{CancelToken, Flow};

/// Runs the first suite testcase end to end (global + local) and
/// returns the canonicalized snapshot text.
fn run_once(seed: u64) -> String {
    let case = suite_cases(seed)[0];
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Warn,
        ..ObsConfig::default()
    });
    let mut cfg = clockvar_workbench::quick_flow_config();
    cfg.obs = obs.clone();
    let prep = PreparedCase::generate(case, 32, &cfg, &[Flow::GlobalLocal]);
    let (report, runtime_ms) = prep.run(Flow::GlobalLocal, &cfg).expect("quick flow runs");
    let wirelength = TreeStats::compute(&report.tree, &prep.tc.lib).wirelength_um;
    let mut snap = QorSnapshot::new("determinism-test", seed, "quick");
    snap.testcases.push(TestcaseQor::from_report(
        case.kind.name(),
        &prep.corner_names(),
        &report,
        obs.metrics_snapshot().as_ref(),
        runtime_ms,
        wirelength,
    ));
    snap.canonical_json()
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_once(41);
    let b = run_once(41);
    assert_eq!(
        a, b,
        "same-seed reruns must produce byte-identical canonical QoR snapshots"
    );
}

/// Like [`run_once`], but cancels the flow at a deterministic cut point
/// (token poll count). Returns the canonical snapshot and whether the
/// report was partial.
fn run_cancelled(seed: u64, cut: u64) -> (String, bool) {
    let case = suite_cases(seed)[0];
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Warn,
        ..ObsConfig::default()
    });
    let token = CancelToken::new();
    token.trip_after_polls(cut);
    let mut cfg = clockvar_workbench::quick_flow_config();
    cfg.obs = obs.clone();
    cfg.cancel = token;
    let prep = PreparedCase::generate(case, 32, &cfg, &[Flow::GlobalLocal]);
    let (report, runtime_ms) = prep
        .run(Flow::GlobalLocal, &cfg)
        .expect("a mid-flow cut yields a best-so-far report");
    let wirelength = TreeStats::compute(&report.tree, &prep.tc.lib).wirelength_um;
    let partial = report.partial;
    let mut snap = QorSnapshot::new("determinism-test", seed, "quick");
    snap.testcases.push(TestcaseQor::from_report(
        case.kind.name(),
        &prep.corner_names(),
        &report,
        obs.metrics_snapshot().as_ref(),
        runtime_ms,
        wirelength,
    ));
    (snap.canonical_json(), partial)
}

/// The anytime contract is itself deterministic: cancelling the same
/// seeded flow at the same poll-count cut point twice must yield
/// byte-identical canonical QoR snapshots of the best-so-far result.
#[test]
fn same_cut_cancelled_runs_are_byte_identical() {
    // a cut deep enough that a baseline exists, well before completion
    let cut = 1_500;
    let (a, a_partial) = run_cancelled(41, cut);
    let (b, b_partial) = run_cancelled(41, cut);
    assert!(
        a_partial && b_partial,
        "the cut must actually interrupt the flow"
    );
    assert_eq!(
        a, b,
        "same-seed same-cut cancelled reruns must produce byte-identical snapshots"
    );
}
