//! Fig. 8: sum of skew variation vs local-optimization iteration, with
//! the move type of each accepted move (the paper colors type I/II/III),
//! the random-move baseline (black dots), and the standalone-local vs
//! local-after-global comparison the paper calls out.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::local::Ranker;
use clk_skewopt::{
    global_optimize, local_optimize, DeltaLatencyModel, GlobalConfig, LocalConfig, LocalReport,
    ModelKind, StageLuts, TrainConfig,
};

fn print_trace(label: &str, rep: &LocalReport) {
    println!(
        "\n{label}: {:.1} -> {:.1} ps ({} golden evals)",
        rep.variation_before, rep.variation_after, rep.golden_evals
    );
    println!("{:>5} {:>10} {:>12}", "iter", "move type", "sum (ps)");
    for (i, it) in rep.iterations.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>12.1}",
            i + 1,
            format!("type-{}", it.move_type),
            it.variation_sum
        );
    }
    if rep.iterations.is_empty() {
        println!("  (no accepted moves)");
    }
}

fn main() {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 96 });
    let sw = Stopwatch::start("fig8");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, args.seed);
    let luts = StageLuts::characterize(&tc.lib);
    let train = TrainConfig {
        n_cases: if args.quick { 10 } else { 24 },
        ..TrainConfig::default()
    };
    let model = DeltaLatencyModel::train(&tc.lib, ModelKind::Hsm, &train);
    let gcfg = GlobalConfig {
        max_pairs: if args.quick { 40 } else { 100 },
        rounds: 2,
        ..GlobalConfig::default()
    };
    let lcfg = LocalConfig {
        max_iterations: if args.quick { 8 } else { 20 },
        ..LocalConfig::default()
    };

    // local after global (the paper's flow for this figure)
    let (mut after_global, greport) =
        global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &gcfg);
    println!(
        "global phase: {:.1} -> {:.1} ps ({} arcs)",
        greport.variation_before, greport.variation_after, greport.arcs_changed
    );
    let ml_after_global = local_optimize(
        &mut after_global,
        &tc.lib,
        &tc.floorplan,
        Ranker::Ml(&model),
        &lcfg,
    );
    print_trace(
        "local iterations after global (predictor-ranked)",
        &ml_after_global,
    );

    // standalone local
    let mut standalone = tc.tree.clone();
    let ml_standalone = local_optimize(
        &mut standalone,
        &tc.lib,
        &tc.floorplan,
        Ranker::Ml(&model),
        &lcfg,
    );
    print_trace("standalone local (predictor-ranked)", &ml_standalone);

    // random baseline on the same post-global start point, capped to the
    // same number of golden-timer evaluations the predictor run used
    let (mut rand_tree, _) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &gcfg);
    let rand_cfg = LocalConfig {
        max_golden_evals: ml_after_global.golden_evals.max(5),
        ..lcfg.clone()
    };
    let random = local_optimize(
        &mut rand_tree,
        &tc.lib,
        &tc.floorplan,
        Ranker::Random(args.seed ^ 0x5EED),
        &rand_cfg,
    );
    print_trace("random-move baseline (same golden budget)", &random);

    let gain_after_global = ml_after_global.variation_before - ml_after_global.variation_after;
    let gain_standalone = ml_standalone.variation_before - ml_standalone.variation_after;
    let gain_random = random.variation_before - random.variation_after;
    println!("\nlocal reduction after global: {gain_after_global:.1} ps");
    println!("standalone local reduction:   {gain_standalone:.1} ps");
    println!("random baseline reduction:    {gain_random:.1} ps");
    println!("\npaper: type-III (surgery) moves dominate early iterations; the predictor");
    println!("clearly beats random; local helps more after the global phase");
    sw.report();
}
