//! End-to-end schema round trip: populate a snapshot from a real
//! (tiny) flow run with observability enabled, serialize it through
//! `clk_obs::json`, parse it back, and self-diff.

use clk_cts::{Testcase, TestcaseKind};
use clk_obs::{Level, Obs, ObsConfig};
use clk_qor::{diff_snapshots, QorSnapshot, TestcaseQor, TolerancePolicy, SCHEMA_VERSION};
use clk_skewopt::{optimize_with, Flow, FlowConfig, GlobalConfig, StageLuts};

fn tiny_global_run() -> (QorSnapshot, TestcaseQor) {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        ..ObsConfig::default()
    });
    let mut cfg = FlowConfig {
        global: GlobalConfig {
            max_pairs: 20,
            lambdas: vec![0.3],
            rounds: 1,
            ..GlobalConfig::default()
        },
        ..FlowConfig::default()
    };
    cfg.obs = obs.clone();
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 24, 2015);
    let luts = StageLuts::characterize(&tc.lib);
    let report = optimize_with(&tc, Flow::Global, &cfg, Some(&luts), None);
    let corner_names: Vec<String> = tc.lib.corners().iter().map(|c| c.name.clone()).collect();
    let wl = clk_netlist::TreeStats::compute(&report.tree, &tc.lib).wirelength_um;
    let rec = TestcaseQor::from_report(
        "CLS1v1",
        &corner_names,
        &report,
        obs.metrics_snapshot().as_ref(),
        1234.5,
        wl,
    );
    let mut snap = QorSnapshot::new("test-rev", 2015, "tiny");
    snap.testcases.push(rec.clone());
    (snap, rec)
}

#[test]
fn populated_snapshot_round_trips_and_self_diffs_clean() {
    let (snap, rec) = tiny_global_run();

    // the extraction saw the real run
    assert_eq!(snap.schema_version, SCHEMA_VERSION);
    assert_eq!(rec.flow, "global");
    assert_eq!(rec.corners.len(), 3, "three corners in the synthetic lib");
    assert!(rec.variation_before_ps > 0.0);
    assert!(rec.variation_after_ps <= rec.variation_before_ps + 1e-9);
    assert!(rec.cells_before > 0);
    assert!(rec.wirelength_um > 0.0);
    assert!(rec.lp_rounds >= 1, "one sweep point was attempted");
    assert!(
        rec.phases
            .iter()
            .any(|p| p.name == "phase.global" && p.wall_ms > 0.0),
        "phase wall clock scraped from the metrics registry: {:?}",
        rec.phases
    );
    assert!(
        rec.counters
            .iter()
            .any(|(n, v)| n == "lp.solves" && *v >= 1.0),
        "raw counters captured: {:?}",
        rec.counters
    );

    // serialization rounds floats to 1e-6 once; after that the round
    // trip is a fixed point
    let text = snap.to_json_pretty();
    let back = QorSnapshot::parse_str(&text).expect("schema parses back");
    assert_eq!(
        back.to_json_pretty(),
        text,
        "parse ∘ print is idempotent on its own output"
    );
    assert_eq!(back.testcases.len(), snap.testcases.len());
    assert!(
        (back.testcases[0].variation_after_ps - rec.variation_after_ps).abs() < 1e-5,
        "values survive to write precision"
    );

    // and the parsed copy self-diffs clean under the default gate
    let d = diff_snapshots(&back, &snap, &TolerancePolicy::default_qor());
    assert!(!d.has_regressions(), "{}", d.to_text(true));
}

#[test]
fn parse_rejects_wrong_shapes() {
    assert!(QorSnapshot::parse_str("[]").is_err());
    assert!(QorSnapshot::parse_str("{\"schema_version\":\"one\"}").is_err());
    let (snap, _) = tiny_global_run();
    // corrupt one testcase: drop a required key
    let text = snap
        .to_json_pretty()
        .replace("\"variation_after_ps\"", "\"variation_after_renamed\"");
    let e = QorSnapshot::parse_str(&text).unwrap_err();
    assert!(e.contains("variation_after_ps"), "{e}");
}
