//! `clk-lint` driver: generates fresh testcases (or audits every kind)
//! and runs the full design-rule audit suite over them.
//!
//! ```text
//! cargo run -p clk-bench --bin lint            # CLS1v1 + CLS2v1, full size
//! cargo run -p clk-bench --bin lint -- --quick # smaller trees, same audits
//! cargo run -p clk-bench --bin lint -- --json  # machine-readable report
//! ```
//!
//! Exit code 0 when no audit reports an error (warnings are allowed),
//! 1 otherwise — suitable as a CI gate.

use std::process::ExitCode;

use clk_cts::{Testcase, TestcaseKind};
use clk_lint::{DesignCtx, LintRunner};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args
        .iter()
        .find(|a| a.as_str() != "--quick" && a.as_str() != "--json")
    {
        eprintln!("unknown argument {bad}; usage: lint [--quick] [--json]");
        return ExitCode::FAILURE;
    }

    let n_sinks = if quick { 60 } else { 200 };
    let runner = LintRunner::with_default_passes();
    let mut failed = false;
    for (kind, seed) in [(TestcaseKind::Cls1v1, 11), (TestcaseKind::Cls2v1, 12)] {
        let tc = Testcase::generate(kind, n_sinks, seed);
        let report = runner.run(&DesignCtx::with_floorplan(&tc.tree, &tc.lib, &tc.floorplan));
        if json {
            println!("{}", report.to_json());
        } else {
            println!("== {kind:?} ({n_sinks} sinks, seed {seed}) ==");
            print!("{}", report.to_text());
        }
        failed |= report.has_errors();
    }
    if !json {
        println!("passes: {}", runner.pass_names().join(", "));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
