//! The built-in lint passes.

pub mod arcs;
pub mod geometry;
pub mod parasitics;
pub mod structure;
pub mod timing;

use crate::runner::LintPass;

/// The full default registry, in dependency order: structural audits
/// first (they decide whether the graph is safe to walk), then the
/// derived-view, geometry, parasitic and timing audits.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(structure::TreeStructurePass),
        Box::new(arcs::ArcCoverPass),
        Box::new(arcs::ArcChainPass),
        Box::new(arcs::PolarityPass),
        Box::new(geometry::RouteGeometryPass),
        Box::new(geometry::PlacementPass),
        Box::new(parasitics::ParasiticsPass),
        Box::new(parasitics::SpefRoundTripPass),
        Box::new(timing::TimingSanityPass),
        Box::new(timing::DrcPass),
    ]
}

/// The cheap structural subset used by inner-loop gates: no extraction,
/// no timing.
pub fn structural_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(structure::TreeStructurePass),
        Box::new(arcs::ArcCoverPass),
        Box::new(arcs::ArcChainPass),
        Box::new(arcs::PolarityPass),
        Box::new(geometry::RouteGeometryPass),
        Box::new(geometry::PlacementPass),
    ]
}
