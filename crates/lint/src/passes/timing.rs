//! `T0xx` — timing audits: finite latencies and slews everywhere,
//! design-rule budgets at every pin, and sane sink pairs.

use clk_netlist::NodeKind;
use clk_sta::{Timer, Violation};

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Locus};
use crate::runner::LintPass;

/// The timing-sanity audit pass: `T001` a node without a finite arrival
/// or slew (or a tree the timer cannot analyze at all), `T004` a sink
/// pair referencing dead or non-sink nodes, or whose skews fail
/// antisymmetry.
pub struct TimingSanityPass;

impl LintPass for TimingSanityPass {
    fn name(&self) -> &'static str {
        "timing-sanity"
    }

    fn description(&self) -> &'static str {
        "finite arrivals/slews at every live node and well-formed sink pairs"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        // pair sanity does not need timing
        for (i, p) in ctx.tree.sink_pairs().iter().enumerate() {
            for end in [p.a, p.b] {
                if !ctx.tree.is_alive(end) {
                    out.push(Diagnostic::error(
                        "T004",
                        Locus::Pair(i),
                        format!("sink pair references dead node {end}"),
                    ));
                } else if ctx.tree.node(end).kind != NodeKind::Sink {
                    out.push(Diagnostic::error(
                        "T004",
                        Locus::Pair(i),
                        format!("sink pair references non-sink {end}"),
                    ));
                }
            }
            if !p.weight.is_finite() || p.weight <= 0.0 {
                out.push(Diagnostic::error(
                    "T004",
                    Locus::Pair(i),
                    format!("sink pair weight {} is not positive and finite", p.weight),
                ));
            }
        }
        if !ctx.structurally_sound() {
            return;
        }
        let per_corner = match Timer::golden().try_analyze_all(ctx.tree, ctx.lib) {
            Ok(t) => t,
            Err(e) => {
                out.push(Diagnostic::error(
                    "T001",
                    Locus::Design,
                    format!("tree cannot be timed: {e}"),
                ));
                return;
            }
        };
        for timing in &per_corner {
            for id in ctx.tree.node_ids() {
                if timing.try_arrival_ps(id).is_err() || timing.try_slew_ps(id).is_err() {
                    out.push(Diagnostic::error(
                        "T001",
                        Locus::Node(id),
                        format!(
                            "no finite arrival/slew at {id} at corner {}",
                            timing.corner().0
                        ),
                    ));
                }
            }
            // per-pair antisymmetry of the signed skew
            for (i, p) in ctx.tree.sink_pairs().iter().enumerate() {
                let (Ok(ta), Ok(tb)) = (timing.try_arrival_ps(p.a), timing.try_arrival_ps(p.b))
                else {
                    continue; // T001 above
                };
                let fwd = ta - tb;
                let rev = tb - ta;
                if (fwd + rev).abs() > 1e-9 || !fwd.is_finite() {
                    out.push(Diagnostic::error(
                        "T004",
                        Locus::Pair(i),
                        format!(
                            "skew not antisymmetric at corner {}: {fwd} vs {rev}",
                            timing.corner().0
                        ),
                    ));
                }
            }
        }
    }
}

/// The design-rule audit pass: `T002` (warning) a driver loaded past its
/// cell's max capacitance, `T003` (warning) an input slew past the
/// library limit.
///
/// Warnings, not errors: generated testcases legitimately carry DRC
/// overruns that the ECO budget is allowed to trade against — the audit
/// surfaces them without failing `ErrorsOnly` gates.
pub struct DrcPass;

impl LintPass for DrcPass {
    fn name(&self) -> &'static str {
        "drc"
    }

    fn description(&self) -> &'static str {
        "max-cap and max-slew budgets at every pin (warnings)"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        if !ctx.structurally_sound() {
            return;
        }
        let Ok(per_corner) = Timer::golden().try_analyze_all(ctx.tree, ctx.lib) else {
            return; // T001's job
        };
        for timing in &per_corner {
            for v in timing.violations() {
                match *v {
                    Violation::MaxCap {
                        node,
                        load_ff,
                        limit_ff,
                    } => out.push(Diagnostic::warning(
                        "T002",
                        Locus::Node(node),
                        format!(
                            "corner {}: load {load_ff:.1} fF exceeds max-cap {limit_ff:.1} fF",
                            timing.corner().0
                        ),
                    )),
                    Violation::MaxSlew {
                        node,
                        slew_ps,
                        limit_ps,
                    } => out.push(Diagnostic::warning(
                        "T003",
                        Locus::Node(node),
                        format!(
                            "corner {}: slew {slew_ps:.1} ps exceeds max-slew {limit_ps:.1} ps",
                            timing.corner().0
                        ),
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{Library, StdCorners};
    use clk_netlist::{ClockTree, SinkPair};

    fn fixture() -> (Library, ClockTree) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x8);
        let b = tree.add_node(NodeKind::Buffer(x8), Point::new(50_000, 0), tree.root());
        let s1 = tree.add_node(NodeKind::Sink, Point::new(100_000, 20_000), b);
        let s2 = tree.add_node(NodeKind::Sink, Point::new(100_000, -20_000), b);
        tree.set_sink_pairs(vec![SinkPair::new(s1, s2)]);
        (lib, tree)
    }

    #[test]
    fn clean_tree_is_quiet() {
        let (lib, tree) = fixture();
        let mut out = Vec::new();
        TimingSanityPass.run(&DesignCtx::new(&tree, &lib), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn overloaded_tiny_driver_warns_t002() {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x1 = lib.cell_by_name("CLKINV_X1").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x1);
        // one X1 inverter driving a brutal fanout of faraway sinks
        let b = tree.add_node(NodeKind::Buffer(x1), Point::new(10_000, 0), tree.root());
        for i in 0..40 {
            tree.add_node(
                NodeKind::Sink,
                Point::new(400_000, 12_000 * clk_geom::Dbu::from(i)),
                b,
            );
        }
        let mut out = Vec::new();
        DrcPass.run(&DesignCtx::new(&tree, &lib), &mut out);
        assert!(out.iter().any(|d| d.code == "T002"), "{out:?}");
        assert!(out.iter().all(|d| d.severity == crate::Severity::Warning));
    }

    #[test]
    fn bad_pair_weight_is_t004() {
        let (lib, mut tree) = fixture();
        let pair = tree.sink_pairs()[0];
        tree.set_sink_pairs(vec![SinkPair::with_weight(pair.a, pair.b, f64::NAN)]);
        let mut out = Vec::new();
        TimingSanityPass.run(&DesignCtx::new(&tree, &lib), &mut out);
        assert!(out.iter().any(|d| d.code == "T004"), "{out:?}");
    }
}
