//! Token trees: balanced-delimiter groups over the lexer's token
//! stream.
//!
//! The semantic passes (items → call graph → A1xx) need *structure* —
//! which tokens form a function body, which form a closure, which form
//! an argument list — without the cost or fragility of a full Rust
//! parser. Token trees are the smallest structure that delivers that:
//! every `(…)`, `[…]`, `{…}` becomes a [`Group`] node, everything else
//! stays a [`TokenTree::Leaf`]. Parsing is total and panic-free: any
//! imbalance comes back as a typed [`TreeError`] (and the analyzer
//! falls back to the purely lexical passes for that file), and
//! [`flatten`] is the exact inverse of [`parse_trees`] — a property the
//! crate's proptests pin.

use crate::lexer::{TokKind, Token};

/// The three bracket kinds that form groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    /// The opening character.
    pub fn open(self) -> char {
        match self {
            Delim::Paren => '(',
            Delim::Bracket => '[',
            Delim::Brace => '{',
        }
    }

    /// The closing character.
    pub fn close(self) -> char {
        match self {
            Delim::Paren => ')',
            Delim::Bracket => ']',
            Delim::Brace => '}',
        }
    }

    fn from_open(c: &str) -> Option<Delim> {
        match c {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn from_close(c: &str) -> Option<Delim> {
        match c {
            ")" => Some(Delim::Paren),
            "]" => Some(Delim::Bracket),
            "}" => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// A balanced group: delimiter kind, the lines of its brackets, and the
/// trees between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Bracket kind.
    pub delim: Delim,
    /// 1-indexed line of the opening bracket.
    pub open_line: u32,
    /// 1-indexed line of the closing bracket.
    pub close_line: u32,
    /// The trees inside the brackets.
    pub trees: Vec<TokenTree>,
}

/// One node of the token-tree stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenTree {
    /// A non-bracket token, verbatim from the lexer.
    Leaf(Token),
    /// A balanced-delimiter group.
    Group(Group),
}

impl TokenTree {
    /// The line the tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            TokenTree::Leaf(t) => t.line,
            TokenTree::Group(g) => g.open_line,
        }
    }

    /// The leaf's text, or `None` for groups.
    pub fn leaf_text(&self) -> Option<&str> {
        match self {
            TokenTree::Leaf(t) => Some(t.text.as_str()),
            TokenTree::Group(_) => None,
        }
    }

    /// Whether this is an identifier leaf with exactly `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(self, TokenTree::Leaf(t) if t.kind == TokKind::Ident && t.text == text)
    }

    /// Whether this is a punctuation leaf with exactly `text`.
    pub fn is_punct(&self, text: &str) -> bool {
        matches!(self, TokenTree::Leaf(t) if t.kind == TokKind::Punct && t.text == text)
    }
}

/// Why a token stream failed to form trees. Both variants carry the
/// line of the offending bracket so callers can report precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// A closing bracket with no matching opener, or closing a
    /// different kind than the innermost open group.
    Mismatched {
        /// Line of the bad closer.
        line: u32,
        /// The closer found.
        found: char,
        /// The closer the innermost open group needed, if any was open.
        expected: Option<char>,
    },
    /// The stream ended with a group still open.
    Unclosed {
        /// Line of the opener that never closed.
        line: u32,
        /// The opening bracket.
        open: char,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Mismatched {
                line,
                found,
                expected: Some(e),
            } => write!(f, "line {line}: found `{found}` where `{e}` was expected"),
            TreeError::Mismatched { line, found, .. } => {
                write!(f, "line {line}: `{found}` closes nothing")
            }
            TreeError::Unclosed { line, open } => {
                write!(f, "line {line}: `{open}` is never closed")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Parses a token stream into trees.
///
/// Iterative (explicit stack), so pathological nesting cannot overflow
/// the call stack; the lexer already guarantees brackets inside string,
/// char, and comment text never reach here.
///
/// # Errors
///
/// [`TreeError`] on the first unbalanced bracket.
pub fn parse_trees(toks: &[Token]) -> Result<Vec<TokenTree>, TreeError> {
    // each open group parks (delim, open_line, its accumulated children)
    let mut stack: Vec<(Delim, u32, Vec<TokenTree>)> = Vec::new();
    let mut top: Vec<TokenTree> = Vec::new();
    for t in toks {
        if t.kind == TokKind::Punct {
            if let Some(d) = Delim::from_open(&t.text) {
                stack.push((d, t.line, std::mem::take(&mut top)));
                continue;
            }
            if let Some(d) = Delim::from_close(&t.text) {
                match stack.pop() {
                    Some((open_delim, open_line, parent)) if open_delim == d => {
                        let group = Group {
                            delim: d,
                            open_line,
                            close_line: t.line,
                            trees: std::mem::replace(&mut top, parent),
                        };
                        top.push(TokenTree::Group(group));
                    }
                    Some((open_delim, _, _)) => {
                        return Err(TreeError::Mismatched {
                            line: t.line,
                            found: d.close(),
                            expected: Some(open_delim.close()),
                        });
                    }
                    None => {
                        return Err(TreeError::Mismatched {
                            line: t.line,
                            found: d.close(),
                            expected: None,
                        });
                    }
                }
                continue;
            }
        }
        top.push(TokenTree::Leaf(t.clone()));
    }
    if let Some(&(d, line, _)) = stack.first() {
        return Err(TreeError::Unclosed {
            line,
            open: d.open(),
        });
    }
    Ok(top)
}

/// Flattens trees back into the exact token stream they were parsed
/// from (the round-trip property the proptests pin).
pub fn flatten(trees: &[TokenTree]) -> Vec<Token> {
    let mut out = Vec::new();
    flatten_into(trees, &mut out);
    out
}

fn flatten_into(trees: &[TokenTree], out: &mut Vec<Token>) {
    for t in trees {
        match t {
            TokenTree::Leaf(tok) => out.push(tok.clone()),
            TokenTree::Group(g) => {
                out.push(Token {
                    kind: TokKind::Punct,
                    text: g.delim.open().to_string(),
                    line: g.open_line,
                });
                flatten_into(&g.trees, out);
                out.push(Token {
                    kind: TokKind::Punct,
                    text: g.delim.close().to_string(),
                    line: g.close_line,
                });
            }
        }
    }
}

/// Depth-first walk over every group in the forest (pre-order),
/// calling `f` with each group's sibling slice context-free.
pub fn for_each_group(trees: &[TokenTree], f: &mut dyn FnMut(&Group)) {
    for t in trees {
        if let TokenTree::Group(g) = t {
            f(g);
            for_each_group(&g.trees, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> Result<Vec<TokenTree>, TreeError> {
        parse_trees(&tokenize(src).0)
    }

    #[test]
    fn groups_nest_and_round_trip() {
        let (toks, _) = tokenize("fn f(a: [u8; 4]) { g(a[0]); }");
        let trees = parse_trees(&toks).unwrap();
        assert_eq!(flatten(&trees), toks);
        // fn, f, (…), {…}
        let groups: Vec<&Group> = trees
            .iter()
            .filter_map(|t| match t {
                TokenTree::Group(g) => Some(g),
                TokenTree::Leaf(_) => None,
            })
            .collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].delim, Delim::Paren);
        assert_eq!(groups[1].delim, Delim::Brace);
    }

    #[test]
    fn mismatched_closer_is_typed() {
        assert_eq!(
            parse("f(a]"),
            Err(TreeError::Mismatched {
                line: 1,
                found: ']',
                expected: Some(')'),
            })
        );
        assert_eq!(
            parse("a)"),
            Err(TreeError::Mismatched {
                line: 1,
                found: ')',
                expected: None,
            })
        );
    }

    #[test]
    fn unclosed_group_reports_the_opener_line() {
        assert_eq!(
            parse("x\n{ y"),
            Err(TreeError::Unclosed { line: 2, open: '{' })
        );
    }

    #[test]
    fn strings_cannot_unbalance() {
        let trees = parse(r#"f("(((", '}')"#).unwrap();
        assert_eq!(trees.len(), 2); // `f` + the paren group
    }

    #[test]
    fn lines_survive_the_round_trip() {
        let (toks, _) = tokenize("a(\nb\n)");
        let trees = parse_trees(&toks).unwrap();
        let flat = flatten(&trees);
        assert_eq!(flat, toks);
        assert_eq!(flat[1].line, 1); // (
        assert_eq!(flat[3].line, 3); // )
    }
}
