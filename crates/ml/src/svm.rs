//! Least-squares SVM regression with RBF kernel (the paper's "SVM with RBF
//! kernel" model class; LS-SVM trades SMO for one linear solve).

use crate::linalg::Matrix;
use crate::Regressor;

/// A trained LS-SVM: `f(x) = b + Σ αᵢ K(xᵢ, x)` with
/// `K(x, z) = exp(−γ‖x − z‖²)`.
///
/// Training solves the standard LS-SVM saddle system
/// `[[0, 1ᵀ], [1, K + I/C]] · [b; α] = [0; y]`.
#[derive(Debug, Clone)]
pub struct LsSvm {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    bias: f64,
    gamma: f64,
}

impl LsSvm {
    /// Trains on `(xs, ys)`.
    ///
    /// * `gamma` — RBF width (larger = more local);
    /// * `c` — regularization (larger = closer interpolation).
    ///
    /// Training cost is O(n³); callers with large datasets should
    /// subsample (the flow trains on ≤ ~1000 supports).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/mismatched or `gamma`/`c` are not
    /// positive.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], gamma: f64, c: f64) -> Self {
        assert!(!xs.is_empty(), "no training samples");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(gamma > 0.0 && c > 0.0, "gamma and c must be positive");
        let n = xs.len();
        let mut m = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            m[(0, i + 1)] = 1.0;
            m[(i + 1, 0)] = 1.0;
            for j in 0..n {
                m[(i + 1, j + 1)] = rbf(&xs[i], &xs[j], gamma);
            }
            m[(i + 1, i + 1)] += 1.0 / c;
        }
        let mut rhs = vec![0.0; n + 1];
        rhs[1..].copy_from_slice(ys);
        let sol = m
            .lu_solve(&rhs)
            .expect("LS-SVM system is nonsingular for C > 0");
        LsSvm {
            xs: xs.to_vec(),
            alpha: sol[1..].to_vec(),
            bias: sol[0],
            gamma,
        }
    }

    /// Number of support vectors (every training point, for LS-SVM).
    pub fn support_count(&self) -> usize {
        self.xs.len()
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

impl Regressor for LsSvm {
    fn predict(&self, x: &[f64]) -> f64 {
        self.bias
            + self
                .xs
                .iter()
                .zip(&self.alpha)
                .map(|(sv, a)| a * rbf(sv, x, self.gamma))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mse;

    #[test]
    fn interpolates_with_large_c() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![f64::from(i) / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        let m = LsSvm::train(&xs, &ys, 2.0, 1e6);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 1e-3);
        }
    }

    #[test]
    fn generalizes_smooth_function() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i) / 8.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() + 0.5 * x[0]).collect();
        let m = LsSvm::train(&xs, &ys, 1.0, 100.0);
        // off-grid points
        let test_x: Vec<Vec<f64>> = (0..39).map(|i| vec![f64::from(i) / 8.0 + 0.06]).collect();
        let test_y: Vec<f64> = test_x.iter().map(|x| (x[0]).sin() + 0.5 * x[0]).collect();
        let preds = m.predict_batch(&test_x);
        assert!(mse(&preds, &test_y) < 1e-3, "mse {}", mse(&preds, &test_y));
    }

    #[test]
    fn small_c_regularizes_toward_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![-10.0, 10.0];
        let tight = LsSvm::train(&xs, &ys, 1.0, 1e6);
        let loose = LsSvm::train(&xs, &ys, 1.0, 1e-3);
        // loose predictions shrink toward the mean (0)
        assert!(loose.predict(&[1.0]).abs() < tight.predict(&[1.0]).abs());
    }

    #[test]
    fn multi_dimensional_inputs() {
        let xs: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![f64::from(i % 5), f64::from(i / 5)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        let m = LsSvm::train(&xs, &ys, 0.3, 1e4);
        assert!((m.predict(&[2.0, 2.0]) - 2.0).abs() < 0.2);
        assert_eq!(m.support_count(), 25);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_hyperparams() {
        let _ = LsSvm::train(&[vec![0.0]], &[1.0], -1.0, 1.0);
    }
}
