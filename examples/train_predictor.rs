//! Trains the per-corner delta-latency predictors on artificial
//! testcases (paper §4.2) and reports held-out accuracy per model class —
//! ANN, SVM-RBF, and the HSM blend — the data behind Fig. 5.
//!
//! ```sh
//! cargo run --release --example train_predictor -- [n_cases]
//! ```

use clk_liberty::{CornerId, Library, StdCorners};
use clk_ml::{mape, mse, r_squared};
use clk_skewopt::predictor::{build_dataset, CornerData, Dataset};
use clk_skewopt::{DeltaLatencyModel, ModelKind, TrainConfig};

fn main() {
    let n_cases: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let lib = Library::synthetic_28nm(StdCorners::all());
    let cfg = TrainConfig {
        n_cases,
        ..TrainConfig::default()
    };
    println!("building dataset from {n_cases} artificial testcases...");
    let ds = build_dataset(&lib, &cfg);
    for (k, cd) in ds.per_corner.iter().enumerate() {
        println!(
            "  corner {}: {} labelled moves",
            lib.corner(CornerId(k)).name,
            cd.x.len()
        );
    }

    // 80/20 split per corner
    let split = |cd: &CornerData| -> (CornerData, CornerData) {
        let cut = cd.x.len() * 4 / 5;
        (
            CornerData {
                x: cd.x[..cut].to_vec(),
                y: cd.y[..cut].to_vec(),
                lat: cd.lat[..cut].to_vec(),
            },
            CornerData {
                x: cd.x[cut..].to_vec(),
                y: cd.y[cut..].to_vec(),
                lat: cd.lat[cut..].to_vec(),
            },
        )
    };
    let parts: Vec<(CornerData, CornerData)> = ds.per_corner.iter().map(split).collect();
    let train = Dataset {
        per_corner: parts.iter().map(|(t, _)| t.clone()).collect(),
    };

    println!(
        "\n{:<8} {:<6} {:>10} {:>10} {:>8}",
        "corner", "model", "mse(ps^2)", "mape(%)", "r2"
    );
    for kind in [ModelKind::Ann, ModelKind::Svm, ModelKind::Hsm] {
        let model = DeltaLatencyModel::fit(&train, kind, &cfg);
        for (k, (_, test)) in parts.iter().enumerate() {
            let pred: Vec<f64> = test
                .x
                .iter()
                .map(|f| model.predict(CornerId(k), f))
                .collect();
            println!(
                "{:<8} {:<6} {:>10.3} {:>10.2} {:>8.3}",
                lib.corner(CornerId(k)).name,
                format!("{kind:?}"),
                mse(&pred, &test.y),
                mape(&pred, &test.y, 1.0),
                r_squared(&pred, &test.y),
            );
        }
    }
    println!("\n(the paper reports ~2.8% average error for its per-corner models)");
}
