//! The clock-tree instance database and its editing operations.

use clk_geom::Point;
use clk_liberty::CellId;
use clk_route::RoutePath;

use crate::pairs::SinkPair;

/// Opaque handle of a node in a [`ClockTree`]. Handles are stable across
/// edits: removed nodes leave tombstones and ids are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The clock root driver. Exactly one per tree; its driving cell is
    /// [`ClockTree::source_cell`].
    Source,
    /// A clock inverter instance of the given library cell.
    Buffer(CellId),
    /// A flip-flop clock pin (leaf).
    Sink,
}

/// One instance in the clock tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Instance kind.
    pub kind: NodeKind,
    /// Placed location.
    pub loc: Point,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Routed path from the parent's location to this node's location;
    /// `None` only for the root.
    pub route: Option<RoutePath>,
}

/// Errors reported by tree edits and by [`ClockTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Operation addressed a removed node.
    DeadNode(NodeId),
    /// Operation requires a buffer but the node is a source or sink.
    NotABuffer(NodeId),
    /// Reparenting would create a cycle (new parent inside the subtree).
    WouldCycle(NodeId),
    /// A sink cannot drive children.
    SinkHasChildren(NodeId),
    /// A route's endpoints do not match the parent/child locations.
    RouteEndpointMismatch(NodeId),
    /// Parent/child bookkeeping is inconsistent (validate only).
    Inconsistent(NodeId),
    /// A non-root node is unreachable from the root (validate only).
    Unreachable(NodeId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::DeadNode(n) => write!(f, "node {n} has been removed"),
            TreeError::NotABuffer(n) => write!(f, "node {n} is not a buffer"),
            TreeError::WouldCycle(n) => write!(f, "reparenting {n} would create a cycle"),
            TreeError::SinkHasChildren(n) => write!(f, "sink {n} cannot drive children"),
            TreeError::RouteEndpointMismatch(n) => {
                write!(f, "route of node {n} does not connect parent to node")
            }
            TreeError::Inconsistent(n) => write!(f, "parent/child links inconsistent at {n}"),
            TreeError::Unreachable(n) => write!(f, "node {n} unreachable from root"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A routed, buffered clock tree.
///
/// See the crate documentation for the modelling overview and an example.
#[derive(Debug, Clone)]
pub struct ClockTree {
    nodes: Vec<Node>,
    alive: Vec<bool>,
    root: NodeId,
    source_cell: CellId,
    sink_pairs: Vec<SinkPair>,
}

impl ClockTree {
    /// Creates a tree containing only the source at `loc`, driven by
    /// library cell `source_cell`.
    pub fn new(loc: Point, source_cell: CellId) -> Self {
        ClockTree {
            nodes: vec![Node {
                kind: NodeKind::Source,
                loc,
                parent: None,
                children: Vec::new(),
                route: None,
            }],
            alive: vec![true],
            root: NodeId(0),
            source_cell,
            sink_pairs: Vec::new(),
        }
    }

    /// The root (source) node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The library cell driving the root net.
    pub fn source_cell(&self) -> CellId {
        self.source_cell
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or removed.
    pub fn node(&self, id: NodeId) -> &Node {
        assert!(self.is_alive(id), "access to dead node {id}");
        &self.nodes[id.0 as usize]
    }

    /// Whether `id` refers to a live node.
    pub fn is_alive(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len() && self.alive[id.0 as usize]
    }

    /// The node's parent (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The node's children.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The node's placed location.
    pub fn loc(&self, id: NodeId) -> Point {
        self.node(id).loc
    }

    /// The buffer's library cell, or `None` for source/sink nodes.
    pub fn cell(&self, id: NodeId) -> Option<CellId> {
        match self.node(id).kind {
            NodeKind::Buffer(c) => Some(c),
            NodeKind::Source => Some(self.source_cell),
            NodeKind::Sink => None,
        }
    }

    /// Adds a node under `parent` with an L-shaped route. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is dead or a sink.
    pub fn add_node(&mut self, kind: NodeKind, loc: Point, parent: NodeId) -> NodeId {
        let route = RoutePath::l_shape(self.loc(parent), loc);
        self.add_node_with_route(kind, loc, parent, route)
            .expect("l_shape endpoints always match")
    }

    /// Adds a node under `parent` with an explicit route.
    ///
    /// # Errors
    ///
    /// [`TreeError::SinkHasChildren`] if `parent` is a sink;
    /// [`TreeError::RouteEndpointMismatch`] if the route does not run from
    /// the parent location to `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is dead.
    pub fn add_node_with_route(
        &mut self,
        kind: NodeKind,
        loc: Point,
        parent: NodeId,
        route: RoutePath,
    ) -> Result<NodeId, TreeError> {
        if self.node(parent).kind == NodeKind::Sink {
            return Err(TreeError::SinkHasChildren(parent));
        }
        if route.start() != self.loc(parent) || route.end() != loc {
            let id = NodeId(self.nodes.len() as u32);
            return Err(TreeError::RouteEndpointMismatch(id));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            loc,
            parent: Some(parent),
            children: Vec::new(),
            route: Some(route),
        });
        self.alive.push(true);
        self.nodes[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Changes a buffer's library cell (a sizing move).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotABuffer`] unless the node is a buffer.
    pub fn set_cell(&mut self, id: NodeId, cell: CellId) -> Result<(), TreeError> {
        match self.node(id).kind {
            NodeKind::Buffer(_) => {
                self.nodes[id.0 as usize].kind = NodeKind::Buffer(cell);
                Ok(())
            }
            _ => Err(TreeError::NotABuffer(id)),
        }
    }

    /// Moves a buffer to `loc`, rerouting the edge to its parent and to
    /// each child as plain L-shapes (the ECO router may re-route later).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotABuffer`] unless the node is a buffer.
    pub fn move_node(&mut self, id: NodeId, loc: Point) -> Result<(), TreeError> {
        if !matches!(self.node(id).kind, NodeKind::Buffer(_)) {
            return Err(TreeError::NotABuffer(id));
        }
        self.nodes[id.0 as usize].loc = loc;
        if let Some(p) = self.parent(id) {
            let r = RoutePath::l_shape(self.loc(p), loc);
            self.nodes[id.0 as usize].route = Some(r);
        }
        let children = self.node(id).children.clone();
        for c in children {
            let r = RoutePath::l_shape(loc, self.loc(c));
            self.nodes[c.0 as usize].route = Some(r);
        }
        Ok(())
    }

    /// Reassigns `id` to a new driver (the paper's **tree surgery** /
    /// type-III move), rerouting with an L-shape.
    ///
    /// # Errors
    ///
    /// [`TreeError::SinkHasChildren`] if `new_parent` is a sink;
    /// [`TreeError::WouldCycle`] if `new_parent` is `id` or lies in the
    /// subtree of `id`.
    ///
    /// # Panics
    ///
    /// Panics if either node is dead or `id` is the root.
    pub fn set_parent(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        assert!(id != self.root, "cannot reparent the root");
        if self.node(new_parent).kind == NodeKind::Sink {
            return Err(TreeError::SinkHasChildren(new_parent));
        }
        if new_parent == id || self.is_descendant(new_parent, id) {
            return Err(TreeError::WouldCycle(id));
        }
        let old = self.node(id).parent.expect("non-root has parent");
        if old == new_parent {
            return Ok(());
        }
        self.nodes[old.0 as usize].children.retain(|&c| c != id);
        self.nodes[new_parent.0 as usize].children.push(id);
        self.nodes[id.0 as usize].parent = Some(new_parent);
        let r = RoutePath::l_shape(self.loc(new_parent), self.loc(id));
        self.nodes[id.0 as usize].route = Some(r);
        Ok(())
    }

    /// Replaces the route of the edge parent→`id`.
    ///
    /// # Errors
    ///
    /// [`TreeError::RouteEndpointMismatch`] unless the route runs from the
    /// parent location to the node location.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or the root.
    pub fn set_route(&mut self, id: NodeId, route: RoutePath) -> Result<(), TreeError> {
        let p = self.parent(id).expect("root has no route");
        if route.start() != self.loc(p) || route.end() != self.loc(id) {
            return Err(TreeError::RouteEndpointMismatch(id));
        }
        self.nodes[id.0 as usize].route = Some(route);
        Ok(())
    }

    /// Removes a buffer and splices its children onto its parent (L-shape
    /// reroute). Works for leaf buffers too (no children).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotABuffer`] unless the node is a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead.
    pub fn remove_buffer(&mut self, id: NodeId) -> Result<(), TreeError> {
        if !matches!(self.node(id).kind, NodeKind::Buffer(_)) {
            return Err(TreeError::NotABuffer(id));
        }
        let parent = self.node(id).parent.expect("buffer has a parent");
        let children = self.node(id).children.clone();
        self.nodes[parent.0 as usize].children.retain(|&c| c != id);
        for c in children {
            self.nodes[c.0 as usize].parent = Some(parent);
            let r = RoutePath::l_shape(self.loc(parent), self.loc(c));
            self.nodes[c.0 as usize].route = Some(r);
            self.nodes[parent.0 as usize].children.push(c);
        }
        self.alive[id.0 as usize] = false;
        Ok(())
    }

    /// Whether `maybe_desc` lies strictly inside the subtree rooted at
    /// `root_of_subtree` (or equals it).
    pub fn is_descendant(&self, maybe_desc: NodeId, root_of_subtree: NodeId) -> bool {
        let mut cur = Some(maybe_desc);
        while let Some(n) = cur {
            if n == root_of_subtree {
                return true;
            }
            cur = self.node(n).parent;
        }
        false
    }

    /// Nodes on the path `root → id`, root first, `id` last.
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Number of inverting stages (buffers) on the path root→`id`,
    /// including `id` itself when it is a buffer. Sinks of a correctly
    /// polarized tree see an even count.
    pub fn inversions_to(&self, id: NodeId) -> usize {
        self.path_from_root(id)
            .iter()
            .filter(|&&n| matches!(self.node(n).kind, NodeKind::Buffer(_)))
            .count()
    }

    /// Buffer level of a node: the number of buffers on the path from the
    /// root up to and including the node. Used for the "same level as
    /// current driver" constraint of type-III moves.
    pub fn buffer_level(&self, id: NodeId) -> usize {
        self.inversions_to(id)
    }

    /// Iterator over live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(move |&id| self.alive[id.0 as usize])
    }

    /// Iterator over live sink ids.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| self.node(id).kind == NodeKind::Sink)
    }

    /// Iterator over live buffer ids.
    pub fn buffers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| matches!(self.node(id).kind, NodeKind::Buffer(_)))
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether the tree has only its source.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The launch/capture sink pairs whose skew the optimization targets.
    pub fn sink_pairs(&self) -> &[SinkPair] {
        &self.sink_pairs
    }

    /// Installs the sink-pair list (deduplicated, orientation-normalized).
    ///
    /// # Panics
    ///
    /// Panics if a pair references a node that is not a live sink.
    pub fn set_sink_pairs(&mut self, pairs: Vec<SinkPair>) {
        let mut normalized: Vec<SinkPair> = pairs
            .into_iter()
            .map(|p| {
                assert!(
                    self.node(p.a).kind == NodeKind::Sink && self.node(p.b).kind == NodeKind::Sink,
                    "sink pair must reference live sinks"
                );
                p.normalized()
            })
            .collect();
        normalized.sort_by_key(|p| (p.a, p.b));
        normalized.dedup_by_key(|p| (p.a, p.b));
        self.sink_pairs = normalized;
    }

    /// Structural validation; see [`TreeError`] for the conditions.
    ///
    /// Thin wrapper over [`ClockTree::validate_all`] kept for the many
    /// call sites that only care about pass/fail; the full audit (every
    /// violation, with diagnostic codes) lives in the `clk-lint` crate's
    /// structural pass, which consumes [`ClockTree::validate_all`].
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn validate(&self) -> Result<(), TreeError> {
        match self.validate_all().into_iter().next() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Exhaustive structural validation: every violation, not just the
    /// first. An empty vector means the tree is well-formed.
    pub fn validate_all(&self) -> Vec<TreeError> {
        let mut errs = Vec::new();
        // parent/child symmetry and route endpoints
        for id in self.node_ids() {
            let n = self.node(id);
            if let Some(p) = n.parent {
                if !self.is_alive(p) {
                    errs.push(TreeError::DeadNode(p));
                } else {
                    if !self.node(p).children.contains(&id) {
                        errs.push(TreeError::Inconsistent(id));
                    }
                    match &n.route {
                        Some(r) if r.start() == self.node(p).loc && r.end() == n.loc => {}
                        _ => errs.push(TreeError::RouteEndpointMismatch(id)),
                    }
                }
            } else if id != self.root {
                errs.push(TreeError::Unreachable(id));
            }
            if n.kind == NodeKind::Sink && !n.children.is_empty() {
                errs.push(TreeError::SinkHasChildren(id));
            }
            for &c in &n.children {
                if !self.is_alive(c) {
                    errs.push(TreeError::DeadNode(c));
                } else if self.node(c).parent != Some(id) {
                    errs.push(TreeError::Inconsistent(c));
                }
            }
        }
        // reachability (also proves acyclicity together with the parent
        // uniqueness established above)
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(n) = stack.pop() {
            if seen[n.0 as usize] {
                errs.push(TreeError::Inconsistent(n));
                continue;
            }
            seen[n.0 as usize] = true;
            count += 1;
            stack.extend_from_slice(&self.node(n).children);
        }
        if count != self.len() {
            for id in self.node_ids().filter(|&id| !seen[id.0 as usize]) {
                errs.push(TreeError::Unreachable(id));
            }
        }
        errs
    }

    // ---- corruption hooks (lint-engine test support) ------------------
    //
    // These bypass the editing API's invariants on purpose so the
    // corruption-injection tests in `clk-lint` can produce structurally
    // broken databases and assert that the linter diagnoses them. They
    // are hidden from docs and must never be called by flow code.

    /// Removes `child` from `parent`'s child list without touching the
    /// child's parent pointer (creates an Inconsistent link).
    #[doc(hidden)]
    pub fn debug_unlink_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.0 as usize]
            .children
            .retain(|&c| c != child);
    }

    /// Overwrites a node's parent pointer directly (can orphan a subtree
    /// or create a cycle).
    #[doc(hidden)]
    pub fn debug_set_parent_raw(&mut self, id: NodeId, parent: Option<NodeId>) {
        self.nodes[id.0 as usize].parent = parent;
    }

    /// Appends to a node's child list directly (can duplicate links or
    /// close a cycle).
    #[doc(hidden)]
    pub fn debug_add_child_raw(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.0 as usize].children.push(child);
    }

    /// Moves a node without rerouting or legalizing (stale route
    /// endpoints, off-grid placement).
    #[doc(hidden)]
    pub fn debug_set_loc_raw(&mut self, id: NodeId, loc: Point) {
        self.nodes[id.0 as usize].loc = loc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellId {
        CellId(2)
    }

    /// source -> b1 -> {s1, b2 -> s2}
    fn small_tree() -> (ClockTree, NodeId, NodeId, NodeId, NodeId) {
        let mut t = ClockTree::new(Point::new(0, 0), cell());
        let b1 = t.add_node(NodeKind::Buffer(cell()), Point::new(10_000, 0), t.root());
        let s1 = t.add_node(NodeKind::Sink, Point::new(20_000, 5_000), b1);
        let b2 = t.add_node(NodeKind::Buffer(cell()), Point::new(20_000, -5_000), b1);
        let s2 = t.add_node(NodeKind::Sink, Point::new(30_000, -5_000), b2);
        (t, b1, s1, b2, s2)
    }

    #[test]
    fn build_and_validate() {
        let (t, ..) = small_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.sinks().count(), 2);
        assert_eq!(t.buffers().count(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn path_and_levels() {
        let (t, b1, s1, b2, s2) = small_tree();
        assert_eq!(t.path_from_root(s2), vec![t.root(), b1, b2, s2]);
        assert_eq!(t.inversions_to(s1), 1);
        assert_eq!(t.inversions_to(s2), 2);
        assert_eq!(t.buffer_level(b1), 1);
        assert_eq!(t.buffer_level(b2), 2);
    }

    #[test]
    fn move_node_reroutes() {
        let (mut t, b1, s1, ..) = small_tree();
        t.move_node(b1, Point::new(12_000, 3_000)).unwrap();
        t.validate().unwrap();
        assert_eq!(t.loc(b1), Point::new(12_000, 3_000));
        let r = t.node(s1).route.as_ref().unwrap();
        assert_eq!(r.start(), Point::new(12_000, 3_000));
        // sinks cannot move
        assert_eq!(
            t.move_node(s1, Point::new(0, 0)).unwrap_err(),
            TreeError::NotABuffer(s1)
        );
    }

    #[test]
    fn tree_surgery() {
        let (mut t, b1, _s1, b2, s2) = small_tree();
        // give s2 a new driver: b1 (skip b2)
        t.set_parent(s2, b1).unwrap();
        t.validate().unwrap();
        assert_eq!(t.parent(s2), Some(b1));
        assert!(t.children(b2).is_empty());
        // cycle rejection: b1 under its own descendant b2
        assert_eq!(t.set_parent(b1, b2).unwrap_err(), TreeError::WouldCycle(b1));
        // sink as parent rejected
        assert_eq!(
            t.set_parent(b2, s2).unwrap_err(),
            TreeError::SinkHasChildren(s2)
        );
        // no-op reparent
        t.set_parent(s2, b1).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn remove_buffer_splices_children() {
        let (mut t, b1, s1, b2, s2) = small_tree();
        t.remove_buffer(b2).unwrap();
        t.validate().unwrap();
        assert_eq!(t.parent(s2), Some(b1));
        assert!(!t.is_alive(b2));
        assert_eq!(t.len(), 4);
        // leaf buffer removal
        let b3 = t.add_node(NodeKind::Buffer(cell()), Point::new(1, 1), b1);
        t.remove_buffer(b3).unwrap();
        t.validate().unwrap();
        // source/sink cannot be removed this way
        assert!(t.remove_buffer(s1).is_err());
    }

    #[test]
    fn set_route_validates_endpoints() {
        let (mut t, b1, ..) = small_tree();
        let good = RoutePath::with_detour(t.loc(t.root()), t.loc(b1), 30.0);
        t.set_route(b1, good).unwrap();
        t.validate().unwrap();
        let bad = RoutePath::l_shape(Point::new(1, 1), t.loc(b1));
        assert!(matches!(
            t.set_route(b1, bad),
            Err(TreeError::RouteEndpointMismatch(_))
        ));
    }

    #[test]
    fn sink_pairs_normalize_and_dedup() {
        let (mut t, _b1, s1, _b2, s2) = small_tree();
        t.set_sink_pairs(vec![
            SinkPair::new(s2, s1),
            SinkPair::new(s1, s2),
            SinkPair::new(s1, s2),
        ]);
        assert_eq!(t.sink_pairs().len(), 1);
        assert_eq!(t.sink_pairs()[0].a, s1.min(s2));
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn dead_node_access_panics() {
        let (mut t, _b1, _s1, b2, _s2) = small_tree();
        t.remove_buffer(b2).unwrap();
        let _ = t.node(b2);
    }

    #[test]
    fn cell_of_each_kind() {
        let (t, b1, s1, ..) = small_tree();
        assert_eq!(t.cell(b1), Some(cell()));
        assert_eq!(t.cell(s1), None);
        assert_eq!(t.cell(t.root()), Some(cell()));
    }

    #[test]
    fn add_node_with_bad_route_rejected() {
        let (mut t, b1, ..) = small_tree();
        let bad = RoutePath::l_shape(Point::new(9, 9), Point::new(50_000, 0));
        assert!(t
            .add_node_with_route(NodeKind::Sink, Point::new(50_000, 0), b1, bad)
            .is_err());
    }
}
