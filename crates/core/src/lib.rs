// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! `clk-skewopt` — the paper's contribution: a global-local optimization
//! framework for simultaneous multi-mode multi-corner clock skew variation
//! reduction (Han, Kahng, Lee, Li, Nath — DAC 2015).
//!
//! Given a routed, buffered clock tree signed off at several PVT corners,
//! the framework minimizes the **sum over sequentially adjacent sink pairs
//! of the worst normalized skew variation across corner pairs**
//! (Eqs. (1)–(3) of the paper):
//!
//! * [`lut`] characterizes stage-delay lookup tables for inverter pairs
//!   (LUT_uniform / LUT_detail, §4.1) once per technology, and fits the
//!   cross-corner delay-ratio feasibility bounds of Fig. 2;
//! * [`global`] builds the LP of Eqs. (4)–(11) over per-arc delay changes,
//!   sweeps the variation bound, and realizes the chosen delay targets
//!   with the LP-guided ECO of Algorithm 1 (buffer removal / re-insertion
//!   / U-shaped routing detours);
//! * [`moves`] enumerates the Table-2 local moves (buffer sizing ±
//!   displacement, child sizing, tree surgery);
//! * [`predictor`] trains the per-corner machine-learning delta-latency
//!   models (ANN, SVM-RBF, HSM) on artificial testcases and exposes the
//!   analytical estimators they refine;
//! * [`local`] runs the iterative local optimization of Algorithm 2 with
//!   the predictor ranking moves and the golden timer arbitrating;
//! * [`flow`] stitches the `global`, `local` and `global-local` flows of
//!   Table 5 together and reports variation / skew / cells / power / area.
//!
//! # Examples
//!
//! ```no_run
//! use clk_cts::{Testcase, TestcaseKind};
//! use clk_skewopt::flow::{optimize, Flow, FlowConfig};
//!
//! let tc = Testcase::generate(TestcaseKind::Cls1v1, 200, 1);
//! let report = optimize(&tc, Flow::GlobalLocal, &FlowConfig::default());
//! println!("variation: {:.1} -> {:.1} ps", report.variation_before, report.variation_after);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod baseline;
pub mod fault;
pub mod flow;
pub mod global;
pub mod local;
pub mod lut;
pub mod moves;
pub mod predictor;
pub mod replay;

pub use baseline::{worst_skew_optimize, WorstSkewReport};
pub use fault::{
    emit_fault, CancelToken, Checkpoint, Deadline, FaultCtx, FaultKind, FaultLog, FaultPlan,
    FaultRecord, FaultSite, FlowBudget, FlowError, PhaseBudget, PhaseProgress, RecoveryAction,
    TreeTxn,
};
pub use flow::{
    check_lint_gate, lint_gate, optimize, optimize_with, try_optimize, try_optimize_with, Flow,
    FlowConfig, OptReport,
};
pub use global::{
    global_optimize, global_optimize_checked, global_optimize_guarded, u_sweep, GlobalConfig,
    GlobalReport, LpObjective, USweepPoint,
};
pub use local::{
    local_optimize, local_optimize_checked, local_optimize_guarded, predict_move_gain,
    CandidateRejects, LocalConfig, LocalReport, Ranker,
};
pub use lut::{RatioBounds, StageLuts};
pub use moves::{apply_move, enumerate_moves, touched_drivers, Move, MoveConfig, Resize};
pub use predictor::{DeltaLatencyModel, ModelKind, TrainConfig};
pub use replay::{replay_ledger, ReplayError};
