//! Clock-inverter cell descriptions.

/// Opaque index of a cell within a [`crate::Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A clock inverter cell master.
///
/// The library generates one `Cell` per drive size; sizes are the familiar
/// `X<drive>` family. Per-corner electrical behaviour lives in the library's
/// NLDM tables — this struct holds the corner-independent properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell master name, e.g. `"CLKINV_X4"`.
    pub name: String,
    /// Drive-strength multiple (the `X` number).
    pub drive: f64,
    /// Input pin capacitance, fF.
    pub input_cap_ff: f64,
    /// Footprint area, µm².
    pub area_um2: f64,
    /// Maximum load capacitance the cell may legally drive, fF.
    pub max_cap_ff: f64,
    /// Nominal leakage power at TT/25°C, nW (scaled per corner by
    /// [`crate::Corner::leakage_factor`]).
    pub leakage_nw: f64,
}

impl Cell {
    /// Builds the standard synthetic clock inverter of the given drive.
    pub fn clock_inverter(drive: f64) -> Self {
        Cell {
            name: format!("CLKINV_X{}", drive as i64),
            drive,
            input_cap_ff: 0.8 * drive,
            area_um2: 0.45 + 0.38 * drive,
            max_cap_ff: 24.0 * drive,
            leakage_nw: 1.1 * drive,
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_properties_scale_with_drive() {
        let x1 = Cell::clock_inverter(1.0);
        let x8 = Cell::clock_inverter(8.0);
        assert_eq!(x1.name, "CLKINV_X1");
        assert_eq!(x8.name, "CLKINV_X8");
        assert!(x8.input_cap_ff > x1.input_cap_ff);
        assert!(x8.area_um2 > x1.area_um2);
        assert!(x8.max_cap_ff > x1.max_cap_ff);
        assert!(x8.leakage_nw > x1.leakage_nw);
    }
}
