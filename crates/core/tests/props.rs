//! Property tests of the optimization framework's building blocks.

use clk_cts::{artificial, Testcase, TestcaseKind};
use clk_liberty::{CellId, CornerId, Library, StdCorners};
use clk_skewopt::lut::{fit_ratio_bounds, ratio_scatter};
use clk_skewopt::{apply_move, enumerate_moves, MoveConfig, StageLuts};
use clk_sta::Timer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every enumerated move applies cleanly to a fresh clone and leaves a
    /// structurally valid, polarity-preserving tree.
    #[test]
    fn every_enumerated_move_is_applicable(n in 8usize..24, seed in 0u64..200) {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, n, seed);
        let mcfg = MoveConfig::default();
        let moves = enumerate_moves(&tc.tree, &tc.lib, &mcfg, None);
        prop_assert!(!moves.is_empty());
        // sample every 7th move to bound runtime
        for mv in moves.iter().step_by(7) {
            let mut trial = tc.tree.clone();
            apply_move(&mut trial, &tc.lib, &tc.floorplan, &mcfg, mv)
                .unwrap_or_else(|e| panic!("move {mv} failed: {e}"));
            trial.validate().expect("move left a valid tree");
            for s in trial.sinks().collect::<Vec<_>>() {
                prop_assert_eq!(trial.inversions_to(s) % 2, 0,
                    "move {} flipped polarity", mv);
            }
        }
    }

    /// Artificial training cases always produce timeable trees whose
    /// driver fanout matches the paper's ranges.
    #[test]
    fn artificial_cases_always_timeable(seed in 0u64..400) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let last = seed % 3 == 0;
        let case = artificial(&lib, seed, last);
        case.tree.validate().expect("artificial tree valid");
        let fanout = case.tree.children(case.driver).len();
        if last {
            prop_assert!((20..=40).contains(&fanout));
        } else {
            prop_assert!((1..=5).contains(&fanout));
        }
        let timer = Timer::golden();
        for c in lib.corner_ids() {
            let t = timer.analyze(&case.tree, &lib, c);
            for s in case.tree.sinks().collect::<Vec<_>>() {
                prop_assert!(t.arrival_ps(s) > 0.0);
            }
        }
    }
}

#[test]
fn ratio_corridors_widen_with_margin() {
    let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
    let luts = StageLuts::characterize(&lib);
    let scatter = ratio_scatter(&luts, CornerId(1), CornerId(0));
    let tight = fit_ratio_bounds(&scatter, 0.0);
    let wide = fit_ratio_bounds(&scatter, 0.10);
    for &(x, _) in scatter.iter().step_by(13) {
        let (tl, th) = tight.bounds(x);
        let (wl, wh) = wide.bounds(x);
        assert!(wl <= tl + 1e-9, "wide lower above tight at {x}");
        assert!(wh >= th - 1e-9, "wide upper below tight at {x}");
    }
}

#[test]
fn stage_luts_cover_all_sizes_and_corners() {
    let lib = Library::synthetic_28nm(StdCorners::all());
    let luts = StageLuts::characterize(&lib);
    assert_eq!(luts.n_sizes(), 5);
    assert_eq!(luts.n_corners(), 4);
    for size in 0..5 {
        for corner in 0..4 {
            for q in [10.0, 55.0, 200.0] {
                let d = luts.stage_delay(CornerId(corner), CellId(size), q);
                assert!(d.is_finite() && d > 0.0);
            }
        }
    }
}
