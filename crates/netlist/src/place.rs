//! Floorplan and legalizer — the stand-in for ECO placement in a P&R tool.
//!
//! The paper's flow asks the commercial tool to legalize every inserted or
//! displaced inverter, which shifts cells off their ideal locations in a
//! ~60%-utilized block. That displacement is one of the discrepancy sources
//! between the LP's desired delays and the realized delays. We model it as
//! (a) snapping to a placement site grid, (b) keeping out of blockages and
//! the die margin, and (c) a small deterministic pseudo-random jitter that
//! emulates "the nearest free site was a few sites over".

use clk_geom::{Dbu, Point, Rect};

/// Placement-site width (dbu): 0.2 µm, typical of a 28nm site.
pub const SITE_W: Dbu = 200;
/// Row height (dbu): 1.2 µm.
pub const ROW_H: Dbu = 1_200;

/// A floorplan: die outline, hard blockages, and the legalization rules.
#[derive(Debug, Clone)]
pub struct Floorplan {
    /// Die (placeable) outline.
    pub die: Rect,
    /// Hard placement blockages (e.g. macros).
    pub blockages: Vec<Rect>,
    /// Maximum legalization jitter in sites (0 disables jitter).
    pub jitter_sites: i64,
}

impl Floorplan {
    /// A jitter-free floorplan over `die` with no blockages.
    pub fn open(die: Rect) -> Self {
        Floorplan {
            die,
            blockages: Vec::new(),
            jitter_sites: 0,
        }
    }

    /// The production-like floorplan: blockages allowed, jitter of up to
    /// ±2 sites / ±1 row emulating a 60%-utilized block.
    pub fn utilized(die: Rect, blockages: Vec<Rect>) -> Self {
        Floorplan {
            die,
            blockages,
            jitter_sites: 2,
        }
    }

    /// Whether `p` is on the site grid, inside the die and outside all
    /// blockages — i.e. already legal.
    pub fn is_legal(&self, p: Point) -> bool {
        p.x % SITE_W == 0
            && p.y % ROW_H == 0
            && self.die.contains(p)
            && !self.blockages.iter().any(|b| b.contains(p))
    }

    /// Snaps to the nearest site/row intersection.
    fn snap(p: Point) -> Point {
        let snap1 = |v: Dbu, g: Dbu| -> Dbu {
            let q = v.div_euclid(g);
            let r = v - q * g;
            if r * 2 >= g {
                (q + 1) * g
            } else {
                q * g
            }
        };
        Point::new(snap1(p.x, SITE_W), snap1(p.y, ROW_H))
    }

    /// Legalizes `p`: returns a legal location near `p`.
    ///
    /// Already-legal inputs are returned unchanged, so legalization is
    /// idempotent. Otherwise the point is snapped, jittered by a
    /// deterministic hash of the target (emulating occupied sites), clamped
    /// into the die and pushed out of blockages.
    pub fn legalize(&self, p: Point) -> Point {
        if self.is_legal(p) {
            return p;
        }
        let mut q = Self::snap(p);
        if self.jitter_sites > 0 {
            let h = hash2(p.x, p.y);
            let span = 2 * self.jitter_sites + 1;
            let dx = (h % span as u64) as i64 - self.jitter_sites;
            let dy = ((h / span as u64) % 3) as i64 - 1;
            q = Point::new(q.x + dx * SITE_W, q.y + dy * ROW_H);
        }
        q = q.clamp_to(self.die_grid());
        // Push out of blockages toward the nearest blockage edge.
        for _ in 0..4 {
            match self.blockages.iter().find(|b| b.contains(q)) {
                None => break,
                Some(b) => {
                    q = Self::snap(nearest_exit(*b, q));
                    q = q.clamp_to(self.die_grid());
                }
            }
        }
        q
    }

    /// The die outline shrunk onto the site grid so clamped points stay
    /// snapped.
    fn die_grid(&self) -> Rect {
        let lo = Point::new(
            self.die.lo.x.div_euclid(SITE_W) * SITE_W
                + Dbu::from(self.die.lo.x % SITE_W != 0) * SITE_W,
            self.die.lo.y.div_euclid(ROW_H) * ROW_H + Dbu::from(self.die.lo.y % ROW_H != 0) * ROW_H,
        );
        let hi = Point::new(
            self.die.hi.x.div_euclid(SITE_W) * SITE_W,
            self.die.hi.y.div_euclid(ROW_H) * ROW_H,
        );
        Rect { lo, hi }
    }
}

/// Moves `p` just outside the nearest edge of blockage `b`.
fn nearest_exit(b: Rect, p: Point) -> Point {
    let to_left = p.x - b.lo.x;
    let to_right = b.hi.x - p.x;
    let to_bot = p.y - b.lo.y;
    let to_top = b.hi.y - p.y;
    let min = to_left.min(to_right).min(to_bot).min(to_top);
    if min == to_left {
        Point::new(b.lo.x - SITE_W, p.y)
    } else if min == to_right {
        Point::new(b.hi.x + SITE_W, p.y)
    } else if min == to_bot {
        Point::new(p.x, b.lo.y - ROW_H)
    } else {
        Point::new(p.x, b.hi.y + ROW_H)
    }
}

/// A small deterministic integer hash (splitmix-style) of two coordinates.
fn hash2(x: Dbu, y: Dbu) -> u64 {
    let mut z =
        (x as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (y as u64).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan::utilized(
            Rect::from_um(0.0, 0.0, 650.0, 650.0),
            vec![Rect::from_um(100.0, 100.0, 200.0, 200.0)],
        )
    }

    #[test]
    fn legalize_is_idempotent() {
        let f = fp();
        for &(x, y) in &[
            (123_456, 77_777),
            (-50, 649_999),
            (150_000, 150_000),
            (1, 1),
        ] {
            let p = Point::new(x, y);
            let l1 = f.legalize(p);
            let l2 = f.legalize(l1);
            assert_eq!(l1, l2, "legalize not idempotent at {p}");
            assert!(f.is_legal(l1), "result not legal at {p} -> {l1}");
        }
    }

    #[test]
    fn legal_points_pass_through() {
        let f = fp();
        let p = Point::new(400 * SITE_W, 100 * ROW_H);
        assert!(f.is_legal(p));
        assert_eq!(f.legalize(p), p);
    }

    #[test]
    fn blockage_interior_is_evacuated() {
        let f = fp();
        let inside = Point::new(150_000, 150_000);
        let out = f.legalize(inside);
        assert!(!f.blockages[0].contains(out));
        assert!(f.die.contains(out));
    }

    #[test]
    fn out_of_die_is_clamped() {
        let f = fp();
        let out = f.legalize(Point::new(-10_000, 700_000));
        assert!(f.die.contains(out));
        assert!(f.is_legal(out));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let f = fp();
        let p = Point::new(333_333, 444_444);
        let a = f.legalize(p);
        let b = f.legalize(p);
        assert_eq!(a, b);
        // within jitter+snap distance of the request
        assert!(p.manhattan(a) <= (f.jitter_sites + 1) * SITE_W + ROW_H + ROW_H / 2);
    }

    #[test]
    fn open_floorplan_just_snaps() {
        let f = Floorplan::open(Rect::from_um(0.0, 0.0, 10.0, 10.0));
        let p = f.legalize(Point::new(290, 550));
        assert_eq!(p, Point::new(200, 0)); // 290→200 (site 0.2µm), 550→0 (row 1.2µm)
    }
}
