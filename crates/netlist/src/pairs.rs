//! Launch/capture sink pairs.

use crate::tree::NodeId;

/// A sequentially adjacent (launch, capture) sink pair with a valid
/// datapath between the two flip-flops. The optimization minimizes skew
/// variation only over such pairs — the paper's *local-skew-aware*
/// formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkPair {
    /// One sink of the pair (normalized: `a <= b`).
    pub a: NodeId,
    /// The other sink.
    pub b: NodeId,
    /// Criticality weight; the Table-5 metric sums variations over the
    /// top-critical pairs, which the testcase generator expresses by
    /// weight.
    pub weight: f64,
}

impl SinkPair {
    /// Creates a pair with weight 1.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        SinkPair { a, b, weight: 1.0 }
    }

    /// Creates a weighted pair.
    pub fn with_weight(a: NodeId, b: NodeId, weight: f64) -> Self {
        SinkPair { a, b, weight }
    }

    /// The same pair with `a <= b`.
    pub fn normalized(self) -> Self {
        if self.a <= self.b {
            self
        } else {
            SinkPair {
                a: self.b,
                b: self.a,
                weight: self.weight,
            }
        }
    }
}

impl std::fmt::Display for SinkPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn normalized_orders_ids() {
        let p = SinkPair::new(NodeId(5), NodeId(2)).normalized();
        assert_eq!((p.a, p.b), (NodeId(2), NodeId(5)));
        let q = SinkPair::new(NodeId(1), NodeId(3)).normalized();
        assert_eq!((q.a, q.b), (NodeId(1), NodeId(3)));
    }

    #[test]
    fn weight_preserved() {
        let p = SinkPair::with_weight(NodeId(9), NodeId(1), 2.5).normalized();
        assert_eq!(p.weight, 2.5);
    }
}
