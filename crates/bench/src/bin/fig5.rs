//! Fig. 5: predicted vs actual latency changes of the delta-latency model
//! and the percentage-error histogram at the hold corner, plus the
//! across-corner error summary the paper quotes (≈2.8% average error,
//! extremes ≈ +22% / −16%).

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_bench::{ascii_histogram, ExpArgs};
use clk_liberty::{CornerId, Library, StdCorners};
use clk_skewopt::predictor::{build_dataset, CornerData, Dataset};
use clk_skewopt::{DeltaLatencyModel, ModelKind, TrainConfig};

fn main() {
    let args = ExpArgs::parse();
    let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
    let cfg = TrainConfig {
        n_cases: if args.quick { 12 } else { 150 },
        seed: args.seed.wrapping_mul(7919).wrapping_add(11),
        ..TrainConfig::default()
    };
    println!("building dataset ({} artificial testcases)...", cfg.n_cases);
    let ds = build_dataset(&lib, &cfg);

    // 80/20 split, train HSM, evaluate held-out
    let split: Vec<(CornerData, CornerData)> = ds
        .per_corner
        .iter()
        .map(|cd| {
            let cut = cd.x.len() * 4 / 5;
            (
                CornerData {
                    x: cd.x[..cut].to_vec(),
                    y: cd.y[..cut].to_vec(),
                    lat: cd.lat[..cut].to_vec(),
                },
                CornerData {
                    x: cd.x[cut..].to_vec(),
                    y: cd.y[cut..].to_vec(),
                    lat: cd.lat[cut..].to_vec(),
                },
            )
        })
        .collect();
    let train = Dataset {
        per_corner: split.iter().map(|(t, _)| t.clone()).collect(),
    };
    let model = DeltaLatencyModel::fit(&train, ModelKind::Hsm, &cfg);

    // The paper plots corner c3: in the CLS1 library that is index 2.
    let hold = CornerId(2);
    // Fig. 5 plots *latencies* reconstructed from predicted deltas:
    // predicted latency = baseline latency + predicted delta.
    let (_, test) = &split[hold.0];
    println!(
        "\n(a) predicted vs actual post-move latency at {} (held-out moves):",
        lib.corner(hold).name
    );
    println!("{:>12} {:>12}", "actual(ps)", "predicted(ps)");
    for ((x, y), lat) in test.x.iter().zip(&test.y).zip(&test.lat).take(24) {
        println!("{:>12.2} {:>12.2}", lat + y, lat + model.predict(hold, x));
    }
    if test.x.len() > 24 {
        println!("... ({} more)", test.x.len() - 24);
    }

    let pct_errors = |k: usize, test: &CornerData| -> Vec<f64> {
        test.x
            .iter()
            .zip(&test.y)
            .zip(&test.lat)
            .map(|((x, y), lat)| 100.0 * (model.predict(CornerId(k), x) - y) / (lat + y))
            .collect()
    };
    let pct = pct_errors(hold.0, test);
    println!(
        "\n(b) latency percentage-error histogram at {}:",
        lib.corner(hold).name
    );
    print!("{}", ascii_histogram(&pct, 9, 40));

    println!("\nacross-corner summary (held-out):");
    let mut all_abs = Vec::new();
    for (k, (_, test)) in split.iter().enumerate() {
        let errs = pct_errors(k, test);
        if errs.is_empty() {
            continue;
        }
        let mean_abs = errs.iter().map(|e| e.abs()).sum::<f64>() / errs.len() as f64;
        let max = errs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  {}: mean |err| {mean_abs:.2}%, max {max:+.2}%, min {min:+.2}%  ({} samples)",
            lib.corner(CornerId(k)).name,
            errs.len()
        );
        all_abs.extend(errs.iter().map(|e| e.abs()));
    }
    let overall = all_abs.iter().sum::<f64>() / all_abs.len().max(1) as f64;
    println!("  overall mean |err|: {overall:.2}%   (paper: 2.8% avg, extremes +21.98/-16.21%)");
}
