//! Property and concurrency tests for the `clk-obs` primitives:
//! histogram quantiles against a sorted-vec oracle, histogram-snapshot
//! merging, the folded-stack exporter, counter updates from racing
//! threads, and JSONL sink round-trip parsing.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic, clippy::float_cmp)]

use clk_obs::ledger::{self, LedgerError, LedgerRecord, MoveRec};
use clk_obs::profile::{from_folded, to_folded};
use clk_obs::{
    json, kv, AppendOutcome, AttrNode, HistSnapshot, Ledger, Level, Obs, ObsConfig, SharedBuf,
    Value,
};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sample set — the oracle the
/// log-linear histogram is checked against.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn histogram_quantiles_track_oracle(
        samples in prop::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = oracle_quantile(&sorted, q);
        let est = snap.quantile(q);
        // log-linear buckets are ~9% wide; allow 15% relative slack
        prop_assert!(
            (est - exact).abs() <= exact.abs() * 0.15 + 1e-9,
            "q={} est={} exact={}", q, est, exact
        );

        let exact_sum: f64 = samples.iter().sum();
        prop_assert!((snap.sum - exact_sum).abs() <= exact_sum.abs() * 1e-9 + 1e-9);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, sorted[sorted.len() - 1]);
    }

    fn histogram_handles_zero_and_negative(
        samples in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        // quantiles stay inside the observed range
        for &q in &[0.0, 0.5, 1.0] {
            let est = snap.quantile(q);
            prop_assert!(est >= snap.min - 1e-12 && est <= snap.max + 1e-12);
        }
    }

    fn jsonl_round_trips_arbitrary_fields(
        n in 0u64..1_000_000,
        x in -1e9f64..1e9,
        s in prop::collection::vec(0u8..128, 0..32),
    ) {
        let text: String = s.into_iter().map(|b| b as char).collect();
        let obs = Obs::new(ObsConfig { verbosity: Level::Trace, ..ObsConfig::default() });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        obs.event(
            Level::Debug,
            "prop.event",
            vec![kv("n", n), kv("x", x), kv("s", text.as_str())],
        );
        obs.flush();
        let line = buf.contents();
        let v = json::parse(line.trim()).expect("emitted line parses");
        let fields = v.get("fields").expect("fields present");
        prop_assert_eq!(fields.get("n").and_then(Value::as_u64), Some(n));
        let got_x = fields.get("x").and_then(Value::as_f64).expect("x");
        prop_assert!((got_x - x).abs() <= x.abs() * 1e-12 + 1e-12);
        prop_assert_eq!(fields.get("s").and_then(Value::as_str), Some(text.as_str()));
    }
}

/// Builds an attribution tree from `(path, self_us)` leaves with
/// whole-microsecond self times, the unit the folded format carries
/// exactly.
fn tree_from_paths(paths: &[(Vec<String>, u64)]) -> AttrNode {
    fn insert(node: &mut AttrNode, path: &[String], self_us: u64) {
        node.total_ns += self_us * 1000;
        let Some((head, rest)) = path.split_first() else {
            return;
        };
        let at = match node.children.iter().position(|c| &c.name == head) {
            Some(i) => i,
            None => {
                let mut fresh = AttrNode::root();
                fresh.name = head.clone();
                node.children.push(fresh);
                node.children.len() - 1
            }
        };
        node.children[at].count += 1;
        insert(&mut node.children[at], rest, self_us);
    }
    fn sort(node: &mut AttrNode) {
        node.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut node.children {
            sort(c);
        }
    }
    let mut root = AttrNode::root();
    for (path, self_us) in paths {
        insert(&mut root, path, *self_us);
    }
    sort(&mut root);
    root
}

/// Total folded weight (µs) of a folded-stack document.
fn folded_weight(s: &str) -> u64 {
    s.lines()
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, w)| w.parse::<u64>().ok())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_folded` → `from_folded` → `to_folded` is a fixpoint, and
    /// the total self-time weight survives the round trip.
    fn folded_stack_round_trips(
        raw in prop::collection::vec(
            (prop::collection::vec(0usize..4, 1..4), 0u64..5000),
            1..24,
        ),
    ) {
        const FRAMES: [&str; 4] = ["lp.solve", "pricing", "ratio_test", "basis_update"];
        let paths: Vec<(Vec<String>, u64)> = raw
            .into_iter()
            .map(|(segs, w)| (segs.into_iter().map(|i| FRAMES[i].to_string()).collect(), w))
            .collect();
        let tree = tree_from_paths(&paths);
        let folded = to_folded(&tree);
        let back = from_folded(&folded);
        let folded2 = to_folded(&back);
        prop_assert_eq!(&folded, &folded2, "round trip must be a fixpoint");
        // every whole-µs self weight is representable, so nothing is
        // lost to truncation and the totals must agree exactly
        let total_us: u64 = paths.iter().map(|(_, w)| *w).sum();
        prop_assert_eq!(folded_weight(&folded), total_us);
        prop_assert_eq!(folded_weight(&folded2), total_us);
    }

    /// Merging two snapshots equals snapshotting one histogram fed
    /// both sample sets (modulo float summation order).
    fn hist_merge_matches_combined_histogram(
        a in prop::collection::vec(1e-3f64..1e4, 0..80),
        b in prop::collection::vec(1e-3f64..1e4, 0..80),
    ) {
        let (ha, hb, hab) = (
            clk_obs::Histogram::default(),
            clk_obs::Histogram::default(),
            clk_obs::Histogram::default(),
        );
        for &v in &a { ha.observe(v); hab.observe(v); }
        for &v in &b { hb.observe(v); hab.observe(v); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let combined = hab.snapshot();
        prop_assert_eq!(merged.count, combined.count);
        prop_assert_eq!(merged.min, combined.min);
        prop_assert_eq!(merged.max, combined.max);
        prop_assert_eq!(&merged.buckets, &combined.buckets);
        prop_assert!((merged.sum - combined.sum).abs() <= combined.sum.abs() * 1e-12 + 1e-12);
    }
}

#[test]
fn hist_merge_of_two_empties_is_empty() {
    let mut a = HistSnapshot::default();
    a.merge(&HistSnapshot::default());
    assert_eq!(a.count, 0);
    assert_eq!(a.sum, 0.0);
    assert!(a.buckets.is_empty());
    assert_eq!(a.quantile(0.5), 0.0);
}

#[test]
fn hist_merge_into_empty_clones_the_other_side() {
    let h = clk_obs::Histogram::default();
    h.observe(3.5);
    h.observe(7.0);
    let other = h.snapshot();
    let mut empty = HistSnapshot::default();
    empty.merge(&other);
    assert_eq!(empty, other);
    // and the reverse direction leaves the populated side unchanged
    let mut populated = other.clone();
    populated.merge(&HistSnapshot::default());
    assert_eq!(populated, other);
}

#[test]
fn hist_merge_single_bucket_accumulates() {
    // identical samples land in one bucket; merging adds counts there
    let (h1, h2) = (clk_obs::Histogram::default(), clk_obs::Histogram::default());
    for _ in 0..3 {
        h1.observe(42.0);
    }
    for _ in 0..5 {
        h2.observe(42.0);
    }
    let mut s = h1.snapshot();
    s.merge(&h2.snapshot());
    assert_eq!(s.count, 8);
    assert_eq!(s.buckets.len(), 1);
    assert_eq!(s.buckets[0].1, 8);
    assert_eq!(s.min, 42.0);
    assert_eq!(s.max, 42.0);
}

#[test]
#[should_panic(expected = "mismatched histogram boundaries")]
fn hist_merge_rejects_foreign_bucket_ranges() {
    let mut a = HistSnapshot::default();
    let foreign = HistSnapshot {
        count: 1,
        sum: 1.0,
        min: 1.0,
        max: 1.0,
        buckets: vec![(u32::MAX, 1)],
    };
    a.merge(&foreign);
}

#[test]
fn counters_survive_racing_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let obs = Obs::new(ObsConfig::default());
    let counter = obs.counter("race.hits").expect("enabled");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = std::sync::Arc::clone(&counter);
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // exercise the by-name path concurrently too
                    if i % 100 == 0 {
                        obs.count("race.named", 1);
                    }
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let snap = obs.metrics_snapshot().expect("enabled");
    match snap.get("race.named") {
        Some(clk_obs::MetricValue::Counter(n)) => {
            assert_eq!(*n, (THREADS as u64) * (PER_THREAD / 100));
        }
        other => panic!("expected counter, got {other:?}"),
    }
}

#[test]
fn histogram_observe_is_thread_safe() {
    let obs = Obs::new(ObsConfig::default());
    let hist = obs.histogram("race.ms").expect("enabled");
    std::thread::scope(|scope| {
        for t in 0..4 {
            let hist = std::sync::Arc::clone(&hist);
            scope.spawn(move || {
                for i in 1..=1000u32 {
                    hist.observe(f64::from(i + t * 1000));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 4000);
    assert_eq!(snap.min, 1.0);
    assert_eq!(snap.max, 4000.0);
}

// ------------------------------------------------------------------
// Decision-ledger properties. The vendored proptest shim has no
// `prop_oneof!` / `any` / `option` combinators, so the record
// generator draws directly from the shim's `TestRng`.

/// A finite float of every flavor the ledger writer can meet: large,
/// tiny, integral, negative zero.
fn finite(rng: &mut proptest::TestRng) -> f64 {
    match rng.below(4) {
        0 => 0.0,
        1 => -0.0,
        2 => (rng.below(2_000_000_000) as i64 - 1_000_000_000) as f64 * 1e-6,
        _ => (rng.unit_f64() - 0.5) * 2e12,
    }
}

fn opt_f(rng: &mut proptest::TestRng) -> Option<f64> {
    (rng.below(2) == 0).then(|| finite(rng))
}

fn vec_f(rng: &mut proptest::TestRng) -> Vec<f64> {
    (0..rng.below(4)).map(|_| finite(rng)).collect()
}

fn opt_u(rng: &mut proptest::TestRng, span: u128) -> Option<u64> {
    (rng.below(2) == 0).then(|| rng.below(span) as u64)
}

fn pick_name(rng: &mut proptest::TestRng) -> String {
    const NAMES: [&str; 6] = ["global", "local", "ladder", "ok", "improving", "cand"];
    NAMES[rng.below(NAMES.len() as u128) as usize].to_string()
}

fn gen_move(rng: &mut proptest::TestRng) -> MoveRec {
    MoveRec {
        t: rng.below(4) as u64,
        node: rng.below(u128::from(u32::MAX)) as u64,
        dir: opt_u(rng, 8),
        resize: ["none", "up", "down"][rng.below(3) as usize].to_string(),
        child: opt_u(rng, u128::from(u32::MAX)),
        new_parent: opt_u(rng, u128::from(u32::MAX)),
    }
}

/// One arbitrary decision-ledger record covering all ten kinds.
fn gen_record(rng: &mut proptest::TestRng) -> LedgerRecord {
    match rng.below(10) {
        0 => LedgerRecord::FlowInit {
            flow: pick_name(rng),
            sinks: rng.below(5000) as u64,
            corners: 1 + rng.below(7) as u64,
            var: finite(rng),
        },
        1 => LedgerRecord::PhaseStart {
            phase: pick_name(rng),
        },
        2 => LedgerRecord::PhaseEnd {
            phase: pick_name(rng),
            committed: rng.below(2) == 0,
            var: finite(rng),
        },
        3 => LedgerRecord::RoundStart {
            round: rng.below(64) as u64,
            var: finite(rng),
        },
        4 => LedgerRecord::Lambda {
            round: rng.below(64) as u64,
            lambda: finite(rng),
            rung: pick_name(rng),
            cert: pick_name(rng),
            lp_objective: opt_f(rng),
            arcs_changed: rng.below(1000) as u64,
            accepted: rng.below(2) == 0,
            var: opt_f(rng),
        },
        5 => LedgerRecord::EcoArc {
            round: rng.below(64) as u64,
            lambda: finite(rng),
            arc: rng.below(10_000) as u64,
            d_lp: vec_f(rng),
            d_now: vec_f(rng),
            realized: (rng.below(2) == 0).then(|| vec_f(rng)),
            accepted: rng.below(2) == 0,
            var: opt_f(rng),
        },
        6 => LedgerRecord::RoundEnd {
            round: rng.below(64) as u64,
            winner_lambda: opt_f(rng),
            adopted: rng.below(2) == 0,
            var: finite(rng),
        },
        7 => LedgerRecord::LocalCand {
            iter: rng.below(64) as u64,
            slot: rng.below(256) as u64,
            mv: gen_move(rng),
            predicted: finite(rng),
            measured: opt_f(rng),
            deltas: (rng.below(2) == 0).then(|| vec_f(rng)),
            outcome: pick_name(rng),
        },
        8 => LedgerRecord::LocalCommit {
            iter: rng.below(64) as u64,
            mv: gen_move(rng),
            gain: finite(rng),
            committed: rng.below(2) == 0,
            var: opt_f(rng),
        },
        _ => LedgerRecord::FlowEnd { var: finite(rng) },
    }
}

/// Strategy yielding `lo..hi` arbitrary ledger records.
#[derive(Debug)]
struct LedgerRecords(usize, usize);

impl Strategy for LedgerRecords {
    type Value = Vec<LedgerRecord>;
    fn new_value(&self, rng: &mut proptest::TestRng) -> Vec<LedgerRecord> {
        let n = self.0 + rng.below((self.1 - self.0) as u128) as usize;
        (0..n).map(|_| gen_record(rng)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The replay/waterfall contract: encode -> parse is structurally
    /// lossless and re-encoding is **byte-identical**.
    fn ledger_jsonl_round_trips_byte_identical(records in LedgerRecords(0, 24)) {
        let text = ledger::encode_jsonl(&records);
        let parsed = ledger::parse_jsonl(&text).expect("own encoding parses");
        prop_assert_eq!(&parsed, &records);
        prop_assert_eq!(ledger::encode_jsonl(&parsed), text);
    }

    /// Truncating the final line anywhere inside it is a typed
    /// [`LedgerError::Malformed`], never a silently shortened ledger.
    fn truncated_ledger_line_is_typed_error(
        records in LedgerRecords(1, 8),
        cut in 1usize..4096,
    ) {
        let text = ledger::encode_jsonl(&records);
        let body = text.trim_end_matches('\n');
        let last_len = body.rsplit('\n').next().map_or(body.len(), str::len);
        // strictly inside the last line: dropping it whole would leave
        // a well-formed shorter ledger (records are ASCII, so byte
        // slicing is char-safe)
        let cut = 1 + cut % (last_len - 1);
        let truncated = &body[..body.len() - cut];
        let err = ledger::parse_jsonl(truncated).expect_err("truncated line must not parse");
        prop_assert!(
            matches!(err, LedgerError::Malformed { .. }),
            "expected Malformed, got {:?}", err
        );
    }

    /// NaN/Inf never survives: dropped (and counted) at append time,
    /// and the serialized `null` parses as a typed error, not a zero.
    fn nonfinite_floats_never_round_trip(sel in 0usize..3) {
        let rec = LedgerRecord::FlowEnd {
            var: [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][sel],
        };
        let led = Ledger::enabled();
        prop_assert_eq!(led.append(rec.clone()), AppendOutcome::DroppedNonFinite);
        prop_assert_eq!(led.len(), 0);
        // force-encode anyway: the reader refuses it with the field name
        let text = ledger::encode_jsonl(&[rec]);
        match ledger::parse_jsonl(&text) {
            Err(LedgerError::NonFinite { field, .. }) => prop_assert_eq!(field, "var"),
            other => prop_assert!(false, "expected NonFinite, got {:?}", other),
        }
    }
}

#[test]
fn jsonl_stream_of_full_run_parses_line_by_line() {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Trace,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);
    {
        let mut flow = obs.span("flow");
        for round in 0..3u64 {
            let mut span = obs.span_at(Level::Debug, "global.round", vec![kv("round", round)]);
            span.record("lp_iters", round * 7);
        }
        obs.fault("timer_timeout", 0, vec![kv("phase", "local")]);
        flow.record("rounds", 3u64);
    }
    obs.emit_metrics();
    obs.flush();
    let contents = buf.contents();
    let mut kinds = std::collections::BTreeMap::new();
    for line in contents.lines() {
        let v = json::parse(line).expect("line parses");
        let t = v
            .get("t")
            .and_then(Value::as_str)
            .expect("t present")
            .to_string();
        *kinds.entry(t).or_insert(0u32) += 1;
    }
    assert_eq!(kinds.get("span_start"), Some(&4));
    assert_eq!(kinds.get("span_end"), Some(&4));
    assert_eq!(kinds.get("fault"), Some(&1));
    assert_eq!(kinds.get("flight_dump"), Some(&1));
    assert_eq!(kinds.get("metrics"), Some(&1));
}
