//! Moment computation and delay/slew metrics on RC trees.

use crate::rc::RcTree;

/// Which wire delay metric to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireModel {
    /// First-moment (Elmore) delay — pessimistic but additive.
    Elmore,
    /// Two-moment D2M metric `ln2 · m1² / √m̃2` — close to SPICE for far
    /// nodes, never above Elmore.
    D2m,
}

/// First/second moments and derived delay & slew metrics at every node of
/// an [`RcTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// First moment (= Elmore delay), ps, per RC node.
    m1: Vec<f64>,
    /// Second moment `m̃2 = Σ R·C·m1`, ps², per RC node.
    m2: Vec<f64>,
    /// Total net capacitance, fF.
    total_cap_ff: f64,
}

impl NetTiming {
    /// Computes moments for every node of `tree` in O(n).
    pub fn analyze(tree: &RcTree) -> Self {
        let n = tree.node_count();
        // Downstream capacitance per node (reverse topological order works
        // because parents precede children).
        let mut down_cap: Vec<f64> = (0..n).map(|i| tree.cap_ff(i)).collect();
        for i in (1..n).rev() {
            let p = tree.parent(i).expect("non-root");
            down_cap[p] += down_cap[i];
        }
        // m1 (Elmore): m1(child) = m1(parent) + R_edge * downstream cap
        let mut m1 = vec![0.0; n];
        for i in 1..n {
            let p = tree.parent(i).expect("non-root");
            m1[i] = m1[p] + tree.res_kohm(i) * down_cap[i];
        }
        // m̃2: same recursion with cap weights C·m1
        let mut down_w: Vec<f64> = (0..n).map(|i| tree.cap_ff(i) * m1[i]).collect();
        for i in (1..n).rev() {
            let p = tree.parent(i).expect("non-root");
            down_w[p] += down_w[i];
        }
        let mut m2 = vec![0.0; n];
        for i in 1..n {
            let p = tree.parent(i).expect("non-root");
            m2[i] = m2[p] + tree.res_kohm(i) * down_w[i];
        }
        NetTiming {
            m1,
            m2,
            total_cap_ff: tree.total_cap_ff(),
        }
    }

    /// Elmore delay from the driver to node `i`, ps.
    pub fn elmore_ps(&self, i: usize) -> f64 {
        self.m1[i]
    }

    /// Second moment `m̃2` at node `i`, ps².
    pub fn m2(&self, i: usize) -> f64 {
        self.m2[i]
    }

    /// Wire delay to node `i` under the chosen metric, ps.
    ///
    /// D2M = `ln2 · m1² / √m̃2`; when `m̃2` is zero (zero-resistance path)
    /// the delay is zero.
    pub fn delay_ps(&self, i: usize, model: WireModel) -> f64 {
        match model {
            WireModel::Elmore => self.m1[i],
            WireModel::D2m => {
                let m2 = self.m2[i];
                if m2 <= 0.0 {
                    0.0
                } else {
                    std::f64::consts::LN_2 * self.m1[i] * self.m1[i] / m2.sqrt()
                }
            }
        }
    }

    /// Two-moment wire slew (10–90%-like) at node `i`, ps:
    /// `ln9 · √(2·m̃2 − m1²)`, clamped at 0 for near-lumped nets.
    pub fn wire_slew_ps(&self, i: usize) -> f64 {
        let var = 2.0 * self.m2[i] - self.m1[i] * self.m1[i];
        if var <= 0.0 {
            0.0
        } else {
            (9.0f64).ln() * var.sqrt()
        }
    }

    /// Total capacitance the driver sees, fF.
    pub fn total_cap_ff(&self) -> f64 {
        self.total_cap_ff
    }

    /// Number of analyzed nodes.
    pub fn node_count(&self) -> usize {
        self.m1.len()
    }
}

/// PERI slew propagation: combines the driver's output transition with the
/// wire's impulse-response spread, `slew = √(gate² + wire²)`.
pub fn peri_slew(gate_slew_ps: f64, wire_slew_ps: f64) -> f64 {
    (gate_slew_ps * gate_slew_ps + wire_slew_ps * wire_slew_ps).sqrt()
}

#[cfg(test)]
// tests pin exact expected values on purpose
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::WireRc;
    use clk_route::WireTree;

    /// Single lumped RC: R = 1 kΩ, C = 10 fF at the far node.
    fn single_rc() -> RcTree {
        RcTree::from_raw(vec![None, Some(0)], vec![0.0, 1.0], vec![0.0, 10.0])
    }

    #[test]
    fn elmore_of_single_rc_is_rc() {
        let t = NetTiming::analyze(&single_rc());
        assert!((t.elmore_ps(1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn d2m_of_single_lumped_rc_is_ln2_rc() {
        // m1 = RC, m̃2 = R·C·m1 = (RC)², so D2M = ln2·RC — the exact 50%
        // point of a single-pole response.
        let t = NetTiming::analyze(&single_rc());
        let d = t.delay_ps(1, WireModel::D2m);
        assert!((d - std::f64::consts::LN_2 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn d2m_never_exceeds_elmore() {
        // branchy tree with assorted values
        let tree = RcTree::from_raw(
            vec![None, Some(0), Some(1), Some(1), Some(0), Some(4)],
            vec![0.0, 0.5, 1.0, 2.0, 0.3, 0.9],
            vec![1.0, 2.0, 4.0, 3.0, 5.0, 2.5],
        );
        let t = NetTiming::analyze(&tree);
        for i in 1..tree.node_count() {
            assert!(
                t.delay_ps(i, WireModel::D2m) <= t.elmore_ps(i) + 1e-12,
                "node {i}"
            );
        }
    }

    #[test]
    fn elmore_monotone_along_a_path() {
        let tree = RcTree::from_raw(
            vec![None, Some(0), Some(1), Some(2)],
            vec![0.0, 1.0, 1.0, 1.0],
            vec![0.0, 1.0, 1.0, 1.0],
        );
        let t = NetTiming::analyze(&tree);
        assert!(t.elmore_ps(1) < t.elmore_ps(2));
        assert!(t.elmore_ps(2) < t.elmore_ps(3));
    }

    #[test]
    fn distributed_line_approaches_half_rc() {
        // A uniformly distributed RC line's Elmore delay tends to R·C/2 as
        // segmentation is refined (vs R·C for the lumped model).
        let mut wt = WireTree::new(Point::new(0, 0));
        let far = wt.add_child(WireTree::ROOT, Point::new(1_000_000, 0)); // 1000 µm
        let rc = WireRc {
            r_per_um: 1.0e-3,
            c_per_um: 0.1,
        };
        let total_r = 1.0; // kΩ
        let total_c = 100.0; // fF
        let fine = RcTree::extract(&wt, rc, &[], 5.0);
        let tf = NetTiming::analyze(&fine);
        let elmore_fine = tf.elmore_ps(fine.rc_node_of_wire_node(far));
        assert!(
            (elmore_fine - total_r * total_c / 2.0).abs() / (total_r * total_c / 2.0) < 0.02,
            "got {elmore_fine}"
        );
        let lumped = RcTree::extract(&wt, rc, &[], 1e9);
        let tl = NetTiming::analyze(&lumped);
        let elmore_lumped = tl.elmore_ps(lumped.rc_node_of_wire_node(far));
        // π-model lumping already gives RC/2 for a single wire with no load
        assert!(elmore_lumped >= elmore_fine * 0.95);
    }

    #[test]
    fn elmore_monotone_in_r_and_c() {
        let base = RcTree::from_raw(vec![None, Some(0)], vec![0.0, 1.0], vec![0.0, 10.0]);
        let more_r = RcTree::from_raw(vec![None, Some(0)], vec![0.0, 2.0], vec![0.0, 10.0]);
        let more_c = RcTree::from_raw(vec![None, Some(0)], vec![0.0, 1.0], vec![0.0, 20.0]);
        let b = NetTiming::analyze(&base).elmore_ps(1);
        assert!(NetTiming::analyze(&more_r).elmore_ps(1) > b);
        assert!(NetTiming::analyze(&more_c).elmore_ps(1) > b);
    }

    #[test]
    fn wire_slew_zero_for_lumpless_node() {
        let t = NetTiming::analyze(&single_rc());
        assert_eq!(t.wire_slew_ps(0), 0.0);
        assert!(t.wire_slew_ps(1) >= 0.0);
    }

    #[test]
    fn peri_combines_quadratically() {
        assert!((peri_slew(3.0, 4.0) - 5.0).abs() < 1e-12);
        assert_eq!(peri_slew(0.0, 7.0), 7.0);
        assert_eq!(peri_slew(7.0, 0.0), 7.0);
    }

    #[test]
    fn sibling_branches_do_not_share_delay() {
        // Two equal branches from the root: delay to each depends on its
        // own R but the shared cap loads both (Elmore common-path rule).
        let tree = RcTree::from_raw(
            vec![None, Some(0), Some(0)],
            vec![0.0, 1.0, 1.0],
            vec![0.0, 10.0, 30.0],
        );
        let t = NetTiming::analyze(&tree);
        // R_common(root->1, cap at 2) = 0 so node 2's cap doesn't slow node 1
        assert!((t.elmore_ps(1) - 10.0).abs() < 1e-12);
        assert!((t.elmore_ps(2) - 30.0).abs() < 1e-12);
    }
}
