//! Deterministic fault-injection harness for the fault-tolerant flow
//! runtime: arms all four [`FaultSite`] classes from a seeded
//! [`FaultPlan`], runs the full global-local flow, and asserts the flow
//! completes with a degraded-but-valid result and a faithful fault log.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin chaos -- --quick --seed 2015
//! ```
//!
//! Exit code 0 when the flow survives every injected fault, returns a
//! lint-clean tree, `OptReport::faults` records every injection with its
//! recovery action, and the `clk-obs` trace mirrors the fault log — every
//! absorbed fault has a JSONL fault event and a non-empty flight-recorder
//! dump — suitable as a CI gate.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::process::ExitCode;
use std::sync::Arc;

use std::time::Duration;

use clk_bench::{ExpArgs, Stopwatch};
use clk_cts::{Testcase, TestcaseKind};
use clk_lint::{DesignCtx, LintRunner};
use clk_obs::{json, Level, MetricValue, Obs, ObsConfig, SharedBuf, Value};
use clk_skewopt::{
    try_optimize, try_optimize_with, CancelToken, DeltaLatencyModel, FaultKind, FaultPlan,
    FaultSite, Flow, StageLuts,
};

/// The fault-log kind each injection site must show up as.
fn expected_kind(site: FaultSite) -> FaultKind {
    match site {
        FaultSite::NanArcDelay => FaultKind::NanArcDelay,
        FaultSite::CorruptLutRow => FaultKind::CorruptDelayModel,
        FaultSite::InfeasibleLp => FaultKind::LpFailure,
        FaultSite::WorkerPanic => FaultKind::WorkerPanic,
    }
}

fn main() -> ExitCode {
    let args = ExpArgs::parse();
    let n = args.sinks.unwrap_or(if args.quick { 40 } else { 120 });
    let seed = args.seed;
    let cfg_base = clockvar_workbench::quick_flow_config();

    // Start from the stock seeded plan, then clamp each site's firing
    // window so every class is guaranteed an opportunity on this size:
    // the global phase probes NaN injection once per round, the LUT
    // corruption once per long arc per LP build, the infeasible row once
    // per λ point, and the worker panic once per spawned candidate.
    let plan = Arc::new(FaultPlan::seeded(seed));
    plan.arm(FaultSite::NanArcDelay, 0, 1);
    plan.arm(FaultSite::CorruptLutRow, (seed % 50) as u32, 1);
    plan.arm(
        FaultSite::InfeasibleLp,
        (seed % cfg_base.global.lambdas.len().max(1) as u64) as u32,
        1,
    );
    plan.arm(FaultSite::WorkerPanic, (seed % 3) as u32, 1);

    let mut cfg = cfg_base;
    cfg.fault_plan = Some(plan.clone());
    // mirror every absorbed fault into a JSONL trace we can audit after
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Debug,
        ..ObsConfig::default()
    });
    let trace = SharedBuf::new();
    obs.add_jsonl_buffer(&trace);
    cfg.obs = obs.clone();

    println!("chaos: seed {seed}, {n} sinks, flow global-local");
    let sw = Stopwatch::start("chaos");
    let tc = Testcase::generate(TestcaseKind::Cls1v1, n, seed);
    let report = match try_optimize(&tc, Flow::GlobalLocal, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: flow did not survive injection: {e}");
            return ExitCode::FAILURE;
        }
    };
    sw.report();

    println!("\ninjected sites: {:?}", plan.injected());
    println!("fault log ({} records):", report.faults.len());
    println!("{}", report.faults.to_text());
    println!(
        "\nvariation {:.1} -> {:.1} ps (ratio {:.3}), cells {} -> {}",
        report.variation_before,
        report.variation_after,
        report.variation_ratio(),
        report.cells_before,
        report.cells_after,
    );

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };

    let injected = plan.injected();
    for site in FaultSite::ALL {
        check(
            injected.contains(&site),
            &format!("fault class {site} was injected"),
        );
    }
    for site in &injected {
        let kind = expected_kind(*site);
        check(
            report.faults.of_kind(kind).count() >= 1,
            &format!("injected {site} is logged as {kind} with a recovery action"),
        );
    }
    check(
        report.tree.validate().is_ok(),
        "optimized tree is structurally valid",
    );
    // release builds default the in-flow gates to Off, so audit explicitly
    let lint = LintRunner::with_default_passes().run(&DesignCtx::with_floorplan(
        &report.tree,
        &tc.lib,
        &tc.floorplan,
    ));
    check(
        !lint.has_errors(),
        &format!(
            "optimized tree is lint-clean ({} errors)",
            lint.error_count()
        ),
    );
    check(
        report.variation_ratio() <= 1.0 + 1e-9,
        "variation did not degrade under injection",
    );

    // ---- the obs trace must mirror the fault log ----
    obs.flush();
    let fault_seqs: Vec<u64> = trace
        .contents()
        .lines()
        .filter_map(|l| json::parse(l).ok())
        .filter(|v| v.get("t").and_then(Value::as_str) == Some("fault"))
        .filter_map(|v| {
            v.get("fields")
                .and_then(|f| f.get("fault_seq"))
                .and_then(Value::as_u64)
        })
        .collect();
    for f in report.faults.records() {
        check(
            fault_seqs.contains(&f.seq),
            &format!(
                "fault #{} ({}) has a matching JSONL fault event",
                f.seq, f.fault
            ),
        );
    }
    let dumps = obs.flight_dumps();
    check(
        dumps.len() == report.faults.len(),
        &format!(
            "one flight-recorder dump per absorbed fault ({} dumps, {} faults)",
            dumps.len(),
            report.faults.len()
        ),
    );
    check(
        dumps.iter().all(|d| !d.events.is_empty()),
        "every flight-recorder dump is non-empty",
    );

    // ---- deadline / cancellation battery ----
    if !cancellation_battery(&tc, args.quick) {
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("\nchaos: all checks passed");
        ExitCode::SUCCESS
    }
}

/// Sweeps deterministic cancellation cut points (token poll counts)
/// across the global-local flow and asserts the anytime contract at
/// every cut: the flow returns either a best-so-far `OptReport` with
/// `partial: true`, a valid lint-clean tree and an interrupted progress
/// marker, or — when cut before any baseline exists — a typed
/// interrupt error. Also covers the wall-clock trigger with a zero
/// budget and checks the simplex cancellation-ack metric stays within
/// the ≤64-pivot contract.
fn cancellation_battery(tc: &Testcase, quick: bool) -> bool {
    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };
    println!("\ncancellation battery:");
    // per-technology artifacts shared across the sweep
    let luts = StageLuts::characterize(&tc.lib);
    let base = clockvar_workbench::quick_flow_config();
    let model = DeltaLatencyModel::train(&tc.lib, base.model_kind, &base.train);

    // calibration: a passive token counts the flow's total poll count
    let calib = CancelToken::new();
    let mut cfg = base.clone();
    cfg.cancel = calib.clone();
    let total = match try_optimize_with(tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model)) {
        Ok(rep) => {
            check(!rep.partial, "calibration run completes (not partial)");
            calib.polls()
        }
        Err(e) => {
            check(false, &format!("calibration run failed: {e}"));
            return false;
        }
    };
    check(
        total > 0,
        &format!("flow polls its deadline ({total} polls)"),
    );

    // cut points spread across all phases (same seed + config ⇒ the
    // poll sequence matches the calibration run up to the trip)
    let mut cuts: Vec<u64> = if quick {
        vec![1, total / 2, total.saturating_sub(2)]
    } else {
        vec![
            1,
            total / 10,
            total / 4,
            total / 2,
            (3 * total) / 4,
            total.saturating_sub(2),
        ]
    };
    cuts.retain(|&c| c > 0 && c < total);
    cuts.dedup();
    for &cut in &cuts {
        let token = CancelToken::new();
        token.trip_after_polls(cut);
        let obs = Obs::new(ObsConfig::default());
        let mut cfg = base.clone();
        cfg.cancel = token.clone();
        cfg.obs = obs.clone();
        match try_optimize_with(tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model)) {
            Ok(rep) => {
                check(rep.partial, &format!("cut@{cut}: report is partial"));
                check(
                    rep.progress.iter().any(|p| p.interrupted),
                    &format!("cut@{cut}: an interrupted progress marker is recorded"),
                );
                check(
                    rep.tree.validate().is_ok(),
                    &format!("cut@{cut}: best-so-far tree is structurally valid"),
                );
                let lint = LintRunner::with_default_passes().run(&DesignCtx::with_floorplan(
                    &rep.tree,
                    &tc.lib,
                    &tc.floorplan,
                ));
                check(
                    !lint.has_errors(),
                    &format!(
                        "cut@{cut}: best-so-far tree is lint-clean ({} errors)",
                        lint.error_count()
                    ),
                );
            }
            Err(e) => check(
                e.is_interrupt(),
                &format!("cut@{cut}: pre-baseline cut returns a typed interrupt ({e})"),
            ),
        }
        if let Some(MetricValue::Histogram(h)) = obs
            .metrics_snapshot()
            .as_ref()
            .and_then(|s| s.get("lp.cancel.ack_pivots"))
        {
            check(
                h.max <= 64.0,
                &format!(
                    "cut@{cut}: simplex acknowledged cancellation within 64 pivots (max {})",
                    h.max
                ),
            );
        }
    }

    // the wall-clock trigger: a zero global budget cuts the global
    // phase on its first poll and records trigger "wall"
    let obs = Obs::new(ObsConfig::default());
    let mut cfg = base.clone();
    cfg.budget.global.wall_clock = Some(Duration::ZERO);
    cfg.obs = obs.clone();
    match try_optimize_with(tc, Flow::GlobalLocal, &cfg, Some(&luts), Some(&model)) {
        Ok(rep) => {
            check(rep.partial, "zero wall budget: report is partial");
            check(
                rep.progress
                    .iter()
                    .any(|p| p.interrupted && p.trigger == Some("wall")),
                "zero wall budget: progress records the wall trigger",
            );
            check(
                rep.tree.validate().is_ok(),
                "zero wall budget: tree is structurally valid",
            );
        }
        Err(e) => check(
            e.is_interrupt(),
            &format!("zero wall budget: typed interrupt ({e})"),
        ),
    }
    if let Some(MetricValue::Histogram(h)) = obs
        .metrics_snapshot()
        .as_ref()
        .and_then(|s| s.get("cancel.ack.ms"))
    {
        check(
            h.count > 0,
            "zero wall budget: cancellation ack latency was measured",
        );
    }

    !failed
}
