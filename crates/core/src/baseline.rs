//! Related-work baseline: LP-based multi-mode multi-corner **worst-skew**
//! optimization in the style of Lung et al. \[VLSI-DAT'10\] (paper §2).
//!
//! The paper positions its sum-of-variation objective against prior LP
//! formulations that minimize the *worst skew across all corners*. This
//! module implements that baseline on the same substrate — same per-arc
//! Δ variables, bounds (10) and ECO engine — but with the objective
//! `min W, W ≥ |skew_{i,i'}^{c_k}|` for every pair and corner, so the two
//! philosophies can be compared head-to-head (`related_lung` experiment):
//! minimizing the worst skew tends to *not* fix cross-corner disagreement
//! between matched pairs, which is exactly the paper's motivation.

use std::collections::{BTreeMap, HashSet};

use clk_liberty::{CellId, CornerId, Library};
use clk_lp::{Problem, RowKind, VarId};
use clk_netlist::{ArcId, ArcSet, ClockTree, Floorplan, NodeId, NodeKind, SinkPair};
use clk_sta::{
    alpha_factors, arc_delays_ps, local_skew_ps, pair_skews, variation_report, CornerTiming, Timer,
};

use crate::lut::StageLuts;

/// Per-arc (pos, neg) Δ split variables, one pair per corner.
type DeltaVars = BTreeMap<ArcId, Vec<(VarId, VarId)>>;

/// Outcome of the worst-skew baseline.
#[derive(Debug, Clone)]
pub struct WorstSkewReport {
    /// Worst |skew| over pairs and corners before, ps.
    pub worst_before: f64,
    /// Worst |skew| after the accepted ECO, ps.
    pub worst_after: f64,
    /// The paper's metric, for comparison: Σ normalized variation before.
    pub variation_before: f64,
    /// Σ normalized variation after.
    pub variation_after: f64,
    /// Arcs rebuilt.
    pub arcs_changed: usize,
}

/// Runs the worst-skew LP + ECO baseline. The input tree is unchanged;
/// the optimized clone is returned with the report.
pub fn worst_skew_optimize(
    tree: &ClockTree,
    lib: &Library,
    fp: &Floorplan,
    luts: &StageLuts,
    max_pairs: usize,
    lambda: f64,
) -> (ClockTree, WorstSkewReport) {
    let timer = Timer::golden();
    let timings: Vec<CornerTiming> = timer.analyze_all(tree, lib);
    let arcs = ArcSet::extract(tree);
    let arc_d: Vec<Vec<f64>> = timings
        .iter()
        .map(|t| arc_delays_ps(tree, &arcs, t))
        .collect();
    let n_corners = lib.corner_count();
    let all_pairs = tree.sink_pairs().to_vec();
    let skews: Vec<Vec<f64>> = timings.iter().map(|t| pair_skews(t, &all_pairs)).collect();
    let alphas = alpha_factors(&skews);
    let variation_before = variation_report(&skews, &alphas, None).sum;
    let worst_before = skews
        .iter()
        .map(|s| local_skew_ps(s))
        .fold(0.0f64, f64::max);

    // select the pairs with the largest worst-corner |skew|
    let mut order: Vec<usize> = (0..all_pairs.len()).collect();
    let worst_of = |i: usize| -> f64 { skews.iter().map(|s| s[i].abs()).fold(0.0f64, f64::max) };
    order.sort_by(|&a, &b| worst_of(b).total_cmp(&worst_of(a)));
    order.truncate(max_pairs);
    let sel: Vec<SinkPair> = order.iter().map(|&i| all_pairs[i]).collect();

    let mut path_of: BTreeMap<NodeId, Vec<ArcId>> = BTreeMap::new();
    let mut involved_set: HashSet<ArcId> = HashSet::new();
    for p in &sel {
        for s in [p.a, p.b] {
            let path = path_of
                .entry(s)
                .or_insert_with(|| arcs.path_arcs(tree, s))
                .clone();
            involved_set.extend(path);
        }
    }
    let mut involved: Vec<ArcId> = involved_set.into_iter().collect();
    involved.sort_unstable();

    // --- the Lung-style LP: min W + λΣ|Δ|, W ≥ ±skew_k(Δ) ---
    // Builder failures (non-finite skews or bounds) take the same
    // graceful no-op path as an unsolvable LP.
    let built: Option<(Problem, DeltaVars)> = 'lp: {
        let mut p = Problem::new();
        let mut delta: DeltaVars = BTreeMap::new();
        for &aid in &involved {
            let arc = arcs.arc(aid);
            let len = arc.length_um(tree).max(1.0);
            let drv = tree.cell(arc.from).unwrap_or(CellId(0));
            let end_load = match tree.node(arc.to).kind {
                NodeKind::Buffer(c) => lib.cell(c).input_cap_ff,
                NodeKind::Sink => lib.sink_cap_ff(),
                NodeKind::Source => 0.0,
            };
            let mut per_corner = Vec::with_capacity(n_corners);
            for k in 0..n_corners {
                let d = arc_d[k][aid.0 as usize];
                let slew = timings[k].slew_ps(arc.from);
                let dmin = luts.min_arc_delay(lib, CornerId(k), drv, slew, len, end_load);
                let Ok(pos) = p.add_var(0.0, (0.2 * d).max(0.0), lambda) else {
                    break 'lp None;
                };
                let Ok(neg) = p.add_var(0.0, (d - dmin).max(0.0), lambda) else {
                    break 'lp None;
                };
                per_corner.push((pos, neg));
            }
            delta.insert(aid, per_corner);
        }
        let Ok(w) = p.add_var(0.0, f64::INFINITY, 1.0) else {
            break 'lp None;
        };
        for pair in &sel {
            let pa = &path_of[&pair.a];
            let pb = &path_of[&pair.b];
            let set_b: HashSet<ArcId> = pb.iter().copied().collect();
            let set_a: HashSet<ArcId> = pa.iter().copied().collect();
            let only_a: Vec<ArcId> = pa.iter().copied().filter(|x| !set_b.contains(x)).collect();
            let only_b: Vec<ArcId> = pb.iter().copied().filter(|x| !set_a.contains(x)).collect();
            for k in 0..n_corners {
                let s0 = timings[k].arrival_ps(pair.a) - timings[k].arrival_ps(pair.b);
                for sign in [1.0, -1.0] {
                    // W ≥ sign·(s0 + Σ±Δ)  ⇔  W − sign·ΣΔ-terms ≥ sign·s0
                    let mut terms = vec![(w, 1.0)];
                    for &aid in &only_a {
                        let (pos, neg) = delta[&aid][k];
                        terms.push((pos, -sign));
                        terms.push((neg, sign));
                    }
                    for &aid in &only_b {
                        let (pos, neg) = delta[&aid][k];
                        terms.push((pos, sign));
                        terms.push((neg, -sign));
                    }
                    if p.add_row(RowKind::Ge, sign * s0, &terms).is_err() {
                        break 'lp None;
                    }
                }
            }
        }
        Some((p, delta))
    };
    let Some((p, delta)) = built else {
        return (
            tree.clone(),
            WorstSkewReport {
                worst_before,
                worst_after: worst_before,
                variation_before,
                variation_after: variation_before,
                arcs_changed: 0,
            },
        );
    };
    let Ok(sol) = clk_lp::solve(&p) else {
        return (
            tree.clone(),
            WorstSkewReport {
                worst_before,
                worst_after: worst_before,
                variation_before,
                variation_after: variation_before,
                arcs_changed: 0,
            },
        );
    };

    // realize with the shared incremental ECO, accepting on worst-skew
    // improvement (the baseline's own metric)
    let mut out = tree.clone();
    let mut changed = 0usize;
    let mut current_worst = worst_before;
    let mut todo: Vec<(f64, ArcId, Vec<f64>)> = involved
        .iter()
        .map(|&aid| {
            let deltas: Vec<f64> = (0..n_corners)
                .map(|k| {
                    let (pos, neg) = delta[&aid][k];
                    sol.value(pos).unwrap_or(f64::NAN) - sol.value(neg).unwrap_or(f64::NAN)
                })
                .collect();
            let worst = deltas.iter().map(|d| d.abs()).fold(0.0, f64::max);
            (worst, aid, deltas)
        })
        .filter(|(wst, ..)| *wst > 0.8)
        .collect();
    todo.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (_, aid, deltas) in todo {
        let arc = arcs.arc(aid).clone();
        if !crate::global::arc_is_current(&out, &arc) {
            continue;
        }
        let d_lp: Vec<f64> = (0..n_corners)
            .map(|k| arc_d[k][aid.0 as usize] + deltas[k])
            .collect();
        let d_now: Vec<f64> = (0..n_corners).map(|k| arc_d[k][aid.0 as usize]).collect();
        let backup = out.clone();
        if !crate::global::realize_arc_for_baseline(
            &mut out, lib, fp, luts, &timings, &arc, &d_lp, &d_now,
        ) {
            out = backup;
            continue;
        }
        let after: Vec<Vec<f64>> = timer
            .analyze_all(&out, lib)
            .iter()
            .map(|t| pair_skews(t, &all_pairs))
            .collect();
        let worst = after
            .iter()
            .map(|s| local_skew_ps(s))
            .fold(0.0f64, f64::max);
        if worst < current_worst {
            current_worst = worst;
            changed += 1;
        } else {
            out = backup;
        }
    }

    let final_skews: Vec<Vec<f64>> = timer
        .analyze_all(&out, lib)
        .iter()
        .map(|t| pair_skews(t, &all_pairs))
        .collect();
    let report = WorstSkewReport {
        worst_before,
        worst_after: current_worst,
        variation_before,
        variation_after: variation_report(&final_skews, &alphas, None).sum,
        arcs_changed: changed,
    };
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_cts::{Testcase, TestcaseKind};

    #[test]
    fn worst_skew_baseline_never_degrades_its_own_metric() {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 40, 17);
        let luts = StageLuts::characterize(&tc.lib);
        let (opt, rep) = worst_skew_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, 30, 0.05);
        opt.validate().unwrap();
        assert!(rep.worst_after <= rep.worst_before + 1e-9);
        assert!(rep.worst_before > 0.0);
        // its variation may or may not improve — that disagreement is the
        // paper's whole point; just require the report to be coherent
        assert!(rep.variation_after.is_finite());
    }
}
