//! The versioned QoR snapshot schema and its JSON (de)serialization.
//!
//! A [`QorSnapshot`] is one run of the bench suite: provenance
//! (`schema_version`, git rev, seed), then one [`TestcaseQor`] per
//! (testcase, flow) with the Table-5 metrics (variation sum, per-corner
//! local skew, inverter count/area, power, wirelength) and the
//! performance telemetry scraped from the `clk-obs` metrics registry
//! (per-phase wall clock, LP rounds/iterations, ECO and local-move
//! accept/reject tallies, absorbed-fault counts).

use clk_obs::json::{self, Value};
use clk_obs::{MetricValue, MetricsSnapshot};
use clk_skewopt::OptReport;

/// Version stamped into every snapshot; bump on breaking schema change.
pub const SCHEMA_VERSION: u64 = 1;

/// Per-corner skew figures of one testcase run.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerQor {
    /// Corner name (e.g. `c0`).
    pub name: String,
    /// Local skew before optimization, ps.
    pub skew_before_ps: f64,
    /// Local skew after optimization, ps.
    pub skew_after_ps: f64,
}

/// Wall clock of one flow phase, scraped from the `span.{phase}.ms`
/// histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseQor {
    /// Phase span name (e.g. `phase.global`).
    pub name: String,
    /// Total wall clock spent in the phase, ms.
    pub wall_ms: f64,
}

/// QoR and performance record of one (testcase, flow) run.
#[derive(Debug, Clone, PartialEq)]
pub struct TestcaseQor {
    /// Testcase id (e.g. `CLS1v1`).
    pub id: String,
    /// Flow row (`global`, `local`, `global-local`).
    pub flow: String,
    /// Σ normalized skew variation before, ps.
    pub variation_before_ps: f64,
    /// Σ normalized skew variation after, ps.
    pub variation_after_ps: f64,
    /// Per-corner local skews.
    pub corners: Vec<CornerQor>,
    /// Clock inverters before.
    pub cells_before: u64,
    /// Clock inverters after.
    pub cells_after: u64,
    /// Clock-cell area before, µm².
    pub area_before_um2: f64,
    /// Clock-cell area after, µm².
    pub area_after_um2: f64,
    /// Clock-tree power before (corner 0), mW.
    pub power_before_mw: f64,
    /// Clock-tree power after, mW.
    pub power_after_mw: f64,
    /// Routed clock wirelength after optimization, µm.
    pub wirelength_um: f64,
    /// End-to-end flow wall clock, ms.
    pub runtime_ms: f64,
    /// Per-phase wall clock.
    pub phases: Vec<PhaseQor>,
    /// Global λ-sweep points attempted.
    pub lp_rounds: u64,
    /// Simplex iterations spent across the sweep.
    pub lp_iterations: u64,
    /// Sweep points whose trial ECO was accepted.
    pub eco_accepts: u64,
    /// Sweep points rejected by the guard / fidelity gate.
    pub eco_rejects: u64,
    /// Local moves committed.
    pub local_accepts: u64,
    /// Local candidates rejected (all typed reasons).
    pub local_rejects: u64,
    /// Golden-timer evaluations spent by the local phase.
    pub golden_evals: u64,
    /// Faults the runtime absorbed during the run.
    pub faults_absorbed: u64,
    /// LP certificates re-verified in exact arithmetic during the run
    /// (`cert.checks` counter); informational, never gated.
    pub cert_checked: u64,
    /// Largest exact certificate residual observed across all checks
    /// (`cert.max_resid` histogram max); informational, never gated.
    pub cert_max_resid: f64,
    /// Simplex pivots spent across all solves (`lp.pivots` counter);
    /// informational, never gated.
    pub lp_pivots: u64,
    /// Nonbasic bound-flip iterations (`lp.bound_flips` counter);
    /// informational, never gated.
    pub lp_bound_flips: u64,
    /// Pivots with zero primal step (`lp.degenerate_pivots` counter);
    /// informational, never gated.
    pub lp_degenerate_pivots: u64,
    /// `lp_degenerate_pivots / lp_pivots` (0 when no pivots ran);
    /// the number the coming simplex rewrite must drive down.
    /// Informational, never gated.
    pub lp_degenerate_ratio: f64,
    /// Raw `clk-obs` counters (sorted by name) for drill-down; never
    /// gated, purely informational.
    pub counters: Vec<(String, f64)>,
}

/// One run of the bench suite: provenance plus per-testcase records.
#[derive(Debug, Clone, PartialEq)]
pub struct QorSnapshot {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this crate).
    pub schema_version: u64,
    /// Git revision of the producing tree (`unknown` outside a repo).
    pub git_rev: String,
    /// Generator seed the suite ran with.
    pub seed: u64,
    /// Suite preset (`quick` / `full`).
    pub suite: String,
    /// One record per (testcase, flow).
    pub testcases: Vec<TestcaseQor>,
}

impl QorSnapshot {
    /// An empty snapshot with provenance filled in.
    pub fn new(git_rev: impl Into<String>, seed: u64, suite: impl Into<String>) -> Self {
        QorSnapshot {
            schema_version: SCHEMA_VERSION,
            git_rev: git_rev.into(),
            seed,
            suite: suite.into(),
            testcases: Vec::new(),
        }
    }
}

impl TestcaseQor {
    /// Builds the record for one run from the flow's [`OptReport`], the
    /// run's metrics snapshot (when observability was enabled), the
    /// measured wall clock and the post-optimization wirelength.
    pub fn from_report(
        id: impl Into<String>,
        corner_names: &[String],
        report: &OptReport,
        metrics: Option<&MetricsSnapshot>,
        runtime_ms: f64,
        wirelength_um: f64,
    ) -> Self {
        let corners = corner_names
            .iter()
            .enumerate()
            .map(|(k, name)| CornerQor {
                name: name.clone(),
                skew_before_ps: report.local_skew_before.get(k).copied().unwrap_or(0.0),
                skew_after_ps: report.local_skew_after.get(k).copied().unwrap_or(0.0),
            })
            .collect();
        let (eco_accepts, eco_rejects, lp_rounds, lp_iterations) =
            report.global_report.as_ref().map_or((0, 0, 0, 0), |g| {
                let acc = g.sweep.iter().filter(|p| p.accepted).count() as u64;
                (
                    acc,
                    g.sweep.len() as u64 - acc,
                    g.sweep.len() as u64,
                    g.lp_iterations as u64,
                )
            });
        let (local_accepts, local_rejects, golden_evals) =
            report.local_report.as_ref().map_or((0, 0, 0), |l| {
                (
                    l.iterations.len() as u64,
                    l.rejects.total() as u64,
                    l.golden_evals as u64,
                )
            });
        let mut phases = Vec::new();
        let mut counters = Vec::new();
        let mut cert_checked = 0;
        let mut cert_max_resid = 0.0;
        let mut lp_pivots = 0;
        let mut lp_bound_flips = 0;
        let mut lp_degenerate_pivots = 0;
        if let Some(snap) = metrics {
            for phase in ["phase.init", "phase.global", "phase.local", "phase.scoring"] {
                if let Some(MetricValue::Histogram(h)) = snap.get(&format!("span.{phase}.ms")) {
                    phases.push(PhaseQor {
                        name: phase.to_string(),
                        wall_ms: h.sum,
                    });
                }
            }
            if let Some(MetricValue::Counter(c)) = snap.get("cert.checks") {
                cert_checked = *c;
            }
            if let Some(MetricValue::Histogram(h)) = snap.get("cert.max_resid") {
                cert_max_resid = h.max;
            }
            let ctr = |name: &str| match snap.get(name) {
                Some(MetricValue::Counter(c)) => *c,
                _ => 0,
            };
            lp_pivots = ctr("lp.pivots");
            lp_bound_flips = ctr("lp.bound_flips");
            lp_degenerate_pivots = ctr("lp.degenerate_pivots");
            for (name, v) in snap {
                if let MetricValue::Counter(c) = v {
                    counters.push((name.clone(), *c as f64));
                }
            }
        }
        TestcaseQor {
            id: id.into(),
            flow: report.flow.to_string(),
            variation_before_ps: report.variation_before,
            variation_after_ps: report.variation_after,
            corners,
            cells_before: report.cells_before as u64,
            cells_after: report.cells_after as u64,
            area_before_um2: report.area_before_um2,
            area_after_um2: report.area_after_um2,
            power_before_mw: report.power_before_mw,
            power_after_mw: report.power_after_mw,
            wirelength_um,
            runtime_ms,
            phases,
            lp_rounds,
            lp_iterations,
            eco_accepts,
            eco_rejects,
            local_accepts,
            local_rejects,
            golden_evals,
            faults_absorbed: report.faults.len() as u64,
            cert_checked,
            cert_max_resid,
            lp_pivots,
            lp_bound_flips,
            lp_degenerate_pivots,
            lp_degenerate_ratio: if lp_pivots > 0 {
                lp_degenerate_pivots as f64 / lp_pivots as f64
            } else {
                0.0
            },
            counters,
        }
    }

    /// A copy keeping only the fields that are a pure function of the
    /// input and output trees — runtime, per-phase wall clock, solver
    /// tallies and raw counters are zeroed. Ledger-replay verification
    /// compares the recorded run and the replayed tree through this
    /// projection, byte for byte.
    #[must_use]
    pub fn tree_outcome(&self) -> Self {
        TestcaseQor {
            runtime_ms: 0.0,
            phases: Vec::new(),
            lp_rounds: 0,
            lp_iterations: 0,
            eco_accepts: 0,
            eco_rejects: 0,
            local_accepts: 0,
            local_rejects: 0,
            golden_evals: 0,
            faults_absorbed: 0,
            cert_checked: 0,
            cert_max_resid: 0.0,
            lp_pivots: 0,
            lp_bound_flips: 0,
            lp_degenerate_pivots: 0,
            lp_degenerate_ratio: 0.0,
            counters: Vec::new(),
            ..self.clone()
        }
    }
}

// ---- JSON serialization -------------------------------------------------

fn num(v: f64) -> Value {
    // keep committed baselines diff-friendly: microsecond/µm²-level
    // precision is far below every tolerance band
    Value::Num((v * 1e6).round() / 1e6)
}

impl CornerQor {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::from(self.name.as_str())),
            ("skew_before_ps".to_string(), num(self.skew_before_ps)),
            ("skew_after_ps".to_string(), num(self.skew_after_ps)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(CornerQor {
            name: req_str(v, "name")?,
            skew_before_ps: req_f64(v, "skew_before_ps")?,
            skew_after_ps: req_f64(v, "skew_after_ps")?,
        })
    }
}

impl PhaseQor {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::from(self.name.as_str())),
            ("wall_ms".to_string(), num(self.wall_ms)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(PhaseQor {
            name: req_str(v, "name")?,
            wall_ms: req_f64(v, "wall_ms")?,
        })
    }
}

impl TestcaseQor {
    /// Renders the record as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".to_string(), Value::from(self.id.as_str())),
            ("flow".to_string(), Value::from(self.flow.as_str())),
            (
                "variation_before_ps".to_string(),
                num(self.variation_before_ps),
            ),
            (
                "variation_after_ps".to_string(),
                num(self.variation_after_ps),
            ),
            (
                "corners".to_string(),
                Value::Arr(self.corners.iter().map(CornerQor::to_value).collect()),
            ),
            ("cells_before".to_string(), Value::from(self.cells_before)),
            ("cells_after".to_string(), Value::from(self.cells_after)),
            ("area_before_um2".to_string(), num(self.area_before_um2)),
            ("area_after_um2".to_string(), num(self.area_after_um2)),
            ("power_before_mw".to_string(), num(self.power_before_mw)),
            ("power_after_mw".to_string(), num(self.power_after_mw)),
            ("wirelength_um".to_string(), num(self.wirelength_um)),
            ("runtime_ms".to_string(), num(self.runtime_ms)),
            (
                "phases".to_string(),
                Value::Arr(self.phases.iter().map(PhaseQor::to_value).collect()),
            ),
            ("lp_rounds".to_string(), Value::from(self.lp_rounds)),
            ("lp_iterations".to_string(), Value::from(self.lp_iterations)),
            ("eco_accepts".to_string(), Value::from(self.eco_accepts)),
            ("eco_rejects".to_string(), Value::from(self.eco_rejects)),
            ("local_accepts".to_string(), Value::from(self.local_accepts)),
            ("local_rejects".to_string(), Value::from(self.local_rejects)),
            ("golden_evals".to_string(), Value::from(self.golden_evals)),
            (
                "faults_absorbed".to_string(),
                Value::from(self.faults_absorbed),
            ),
            ("cert_checked".to_string(), Value::from(self.cert_checked)),
            ("cert_max_resid".to_string(), num(self.cert_max_resid)),
            ("lp_pivots".to_string(), Value::from(self.lp_pivots)),
            (
                "lp_bound_flips".to_string(),
                Value::from(self.lp_bound_flips),
            ),
            (
                "lp_degenerate_pivots".to_string(),
                Value::from(self.lp_degenerate_pivots),
            ),
            (
                "lp_degenerate_ratio".to_string(),
                num(self.lp_degenerate_ratio),
            ),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a record from its JSON object.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped key.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let corners = req_arr(v, "corners")?
            .iter()
            .map(CornerQor::from_value)
            .collect::<Result<_, _>>()?;
        let phases = req_arr(v, "phases")?
            .iter()
            .map(PhaseQor::from_value)
            .collect::<Result<_, _>>()?;
        let counters = match v.get("counters") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(k, cv)| {
                    cv.as_f64()
                        .map(|c| (k.clone(), c))
                        .ok_or_else(|| format!("counter {k}: not a number"))
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("missing object key 'counters'".to_string()),
        };
        Ok(TestcaseQor {
            id: req_str(v, "id")?,
            flow: req_str(v, "flow")?,
            variation_before_ps: req_f64(v, "variation_before_ps")?,
            variation_after_ps: req_f64(v, "variation_after_ps")?,
            corners,
            cells_before: req_u64(v, "cells_before")?,
            cells_after: req_u64(v, "cells_after")?,
            area_before_um2: req_f64(v, "area_before_um2")?,
            area_after_um2: req_f64(v, "area_after_um2")?,
            power_before_mw: req_f64(v, "power_before_mw")?,
            power_after_mw: req_f64(v, "power_after_mw")?,
            wirelength_um: req_f64(v, "wirelength_um")?,
            runtime_ms: req_f64(v, "runtime_ms")?,
            phases,
            lp_rounds: req_u64(v, "lp_rounds")?,
            lp_iterations: req_u64(v, "lp_iterations")?,
            eco_accepts: req_u64(v, "eco_accepts")?,
            eco_rejects: req_u64(v, "eco_rejects")?,
            local_accepts: req_u64(v, "local_accepts")?,
            local_rejects: req_u64(v, "local_rejects")?,
            golden_evals: req_u64(v, "golden_evals")?,
            faults_absorbed: req_u64(v, "faults_absorbed")?,
            // absent from pre-certificate baselines; default rather
            // than fail so old snapshots keep parsing
            cert_checked: v.get("cert_checked").and_then(Value::as_u64).unwrap_or(0),
            cert_max_resid: v
                .get("cert_max_resid")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            // absent from pre-profiler baselines; same lenient default
            lp_pivots: v.get("lp_pivots").and_then(Value::as_u64).unwrap_or(0),
            lp_bound_flips: v.get("lp_bound_flips").and_then(Value::as_u64).unwrap_or(0),
            lp_degenerate_pivots: v
                .get("lp_degenerate_pivots")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            lp_degenerate_ratio: v
                .get("lp_degenerate_ratio")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            counters,
        })
    }
}

impl QorSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "schema_version".to_string(),
                Value::from(self.schema_version),
            ),
            ("git_rev".to_string(), Value::from(self.git_rev.as_str())),
            ("seed".to_string(), Value::from(self.seed)),
            ("suite".to_string(), Value::from(self.suite.as_str())),
            (
                "testcases".to_string(),
                Value::Arr(self.testcases.iter().map(TestcaseQor::to_value).collect()),
            ),
        ])
    }

    /// Parses a snapshot from its JSON object.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or mistyped key. An unknown
    /// `schema_version` is *not* an error here — the differ reports it
    /// as a gate failure with context instead.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        Ok(QorSnapshot {
            schema_version: req_u64(v, "schema_version")?,
            git_rev: req_str(v, "git_rev")?,
            seed: req_u64(v, "seed")?,
            suite: req_str(v, "suite")?,
            testcases: req_arr(v, "testcases")?
                .iter()
                .map(TestcaseQor::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// JSON syntax errors or schema-shape errors, as a message.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// Renders the snapshot as indented JSON (diff-friendly for the
    /// committed baseline; one scalar per line).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&self.to_value(), 0, &mut out);
        out.push('\n');
        out
    }

    /// [`to_json_pretty`](Self::to_json_pretty) with every wall-clock
    /// field (`runtime_ms`, per-phase `wall_ms`) zeroed out.
    ///
    /// Two same-seed runs must produce byte-identical canonical JSON —
    /// that is the determinism invariant the parallel local phase rests
    /// on ("parallel evaluation, sequential commit"). Wall-clock times
    /// are the only fields legitimately allowed to differ between such
    /// runs, so the comparison strips exactly those.
    pub fn canonical_json(&self) -> String {
        let mut canon = self.clone();
        for tc in &mut canon.testcases {
            tc.runtime_ms = 0.0;
            for ph in &mut tc.phases {
                ph.wall_ms = 0.0;
            }
        }
        canon.to_json_pretty()
    }
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric key '{key}'"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer key '{key}'"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string key '{key}'"))
}

fn req_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing array key '{key}'"))
}

/// Minimal two-space pretty printer over the `clk_obs::json` model (the
/// model itself only renders compactly).
fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    const PAD: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&PAD.repeat(depth + 1));
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&PAD.repeat(depth));
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(&PAD.repeat(depth + 1));
                out.push_str(&Value::from(k.as_str()).to_json());
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&PAD.repeat(depth));
            out.push('}');
        }
        other => out.push_str(&other.to_json()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_round_trips() {
        let s = QorSnapshot::new("abc123", 7, "quick");
        assert_eq!(s.schema_version, SCHEMA_VERSION);
        let back = QorSnapshot::parse_str(&s.to_json_pretty()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn missing_keys_are_named() {
        let e = QorSnapshot::parse_str("{\"schema_version\":1}").unwrap_err();
        assert!(e.contains("git_rev"), "{e}");
    }

    #[test]
    fn canonical_json_ignores_wall_clock_only() {
        let mut a = QorSnapshot::new("abc123", 7, "quick");
        a.testcases.push(TestcaseQor {
            id: "CLS1v1".to_string(),
            flow: "global-local".to_string(),
            variation_before_ps: 100.0,
            variation_after_ps: 40.0,
            corners: vec![CornerQor {
                name: "c0".to_string(),
                skew_before_ps: 12.0,
                skew_after_ps: 5.0,
            }],
            cells_before: 10,
            cells_after: 12,
            area_before_um2: 1.0,
            area_after_um2: 1.2,
            power_before_mw: 0.5,
            power_after_mw: 0.6,
            wirelength_um: 900.0,
            runtime_ms: 1234.5,
            phases: vec![PhaseQor {
                name: "phase.global".to_string(),
                wall_ms: 456.7,
            }],
            lp_rounds: 3,
            lp_iterations: 30,
            eco_accepts: 2,
            eco_rejects: 1,
            local_accepts: 5,
            local_rejects: 4,
            golden_evals: 9,
            faults_absorbed: 0,
            cert_checked: 0,
            cert_max_resid: 0.0,
            lp_pivots: 30,
            lp_bound_flips: 2,
            lp_degenerate_pivots: 7,
            lp_degenerate_ratio: 7.0 / 30.0,
            counters: vec![("lp.pivots".to_string(), 30.0)],
        });
        // A rerun differing only in wall clock must canonicalize identically.
        let mut b = a.clone();
        b.testcases[0].runtime_ms = 9999.0;
        b.testcases[0].phases[0].wall_ms = 1.0;
        assert_ne!(a.to_json_pretty(), b.to_json_pretty());
        assert_eq!(a.canonical_json(), b.canonical_json());
        // ...but any QoR difference must still show.
        b.testcases[0].lp_iterations = 31;
        assert_ne!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn pretty_output_is_one_scalar_per_line() {
        let s = QorSnapshot::new("abc123", 7, "quick");
        let text = s.to_json_pretty();
        assert!(text.lines().count() >= 6, "{text}");
        assert!(text.contains("\"schema_version\": 1"), "{text}");
    }
}
