// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Interconnect delay calculation — the extraction + delay-calculator
//! substrate.
//!
//! Provides:
//!
//! * [`RcTree`]: a distributed RC network extracted from a routed
//!   [`clk_route::WireTree`] with per-corner wire parasitics and receiver
//!   pin loads (π-segmented at a configurable pitch — fine segmentation is
//!   the "golden" extraction, single-segment lumping is the fast estimate);
//! * [`NetTiming`]: first and second moments of the impulse response at
//!   every node, and from them the **Elmore** delay, the **D2M** two-moment
//!   delay metric \[Alpert-Devgan-Kashyap, ISPD'00\], a two-moment wire slew
//!   metric, and **PERI**-style slew merging \[Kashyap et al., TAU'02\]
//!   (`slew_out² = slew_gate² + slew_wire²`).
//!
//! # Examples
//!
//! ```
//! use clk_geom::Point;
//! use clk_liberty::WireRc;
//! use clk_route::WireTree;
//! use clk_delay::{NetTiming, RcTree, WireModel};
//!
//! let mut wt = WireTree::new(Point::new(0, 0));
//! let far = wt.add_child(WireTree::ROOT, Point::new(100_000, 0)); // 100 µm
//! let rc = WireRc { r_per_um: 2.0e-3, c_per_um: 0.2 };
//! let tree = RcTree::extract(&wt, rc, &[(far, 5.0)], 5.0);
//! let timing = NetTiming::analyze(&tree);
//! let node = tree.rc_node_of_wire_node(far);
//! let elmore = timing.elmore_ps(node);
//! let d2m = timing.delay_ps(node, WireModel::D2m);
//! assert!(d2m <= elmore, "D2M is never more pessimistic than Elmore");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod net;
pub mod rc;
pub mod spef;

pub use net::{peri_slew, NetTiming, WireModel};
pub use rc::RcTree;
