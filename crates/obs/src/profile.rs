//! Performance attribution: cheap deterministic micro-timers.
//!
//! Spans ([`crate::SpanGuard`]) are the *event* layer: each open/close
//! emits a record to every sink, which is far too heavy for a simplex
//! pivot loop that executes thousands of times per solve. The
//! [`Profiler`] is the *aggregation* layer: a scope costs two short
//! mutex sections and two reads of the sanctioned wall clock
//! ([`crate::wall_now`]), and accumulates directly into an in-memory
//! attribution tree — no per-event allocation, no sink traffic.
//!
//! Determinism contract: profiling never feeds back into any
//! algorithmic decision. Scope *counts* and the tree *shape* are
//! deterministic for a fixed seed; only the recorded durations vary
//! run to run. `trace-diff` relies on exactly that split (counts are
//! gated hard, times get noise bands).
//!
//! Scope nesting is tracked per thread (like spans): a scope opened on
//! a worker thread roots its own subtree unless the worker opened an
//! enclosing scope. The snapshot ([`Profiler::tree`]) merges every
//! thread's accumulation into one [`AttrNode`] tree with self/total
//! time and counts, exportable as Brendan-Gregg folded stacks
//! ([`to_folded`]) which both inferno and speedscope import directly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Value;
use crate::wall_now;

const ROOT: usize = 0;
const NS_PER_US: u64 = 1_000;

#[derive(Debug)]
struct Node {
    name: String,
    children: BTreeMap<String, usize>,
    total_ns: u64,
    count: u64,
}

impl Node {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            children: BTreeMap::new(),
            total_ns: 0,
            count: 0,
        }
    }
}

#[derive(Debug)]
struct ProfInner {
    arena: Mutex<Vec<Node>>,
}

// clk-analyze: allow(A004) profiler scopes nest per thread by design; the stack is telemetry state, never an algorithmic input
thread_local! {
    /// Stack of `(profiler identity, node index)` for every scope open
    /// on this thread. Tagging with the profiler identity keeps two
    /// live profilers (e.g. in tests) from cross-linking their trees.
    static PROF_STACK: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Handle to an attribution profiler.
///
/// Cheap to clone and share across threads; the disabled handle (the
/// default) costs one `Option` check per instrumentation point, same
/// as a disabled [`crate::Obs`].
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl Profiler {
    /// A disabled profiler (same as `Profiler::default()`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled profiler with an empty attribution tree.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(ProfInner {
                arena: Mutex::new(vec![Node::new("")]),
            })),
        }
    }

    /// Whether scopes will be recorded at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn tag(inner: &Arc<ProfInner>) -> usize {
        Arc::as_ptr(inner) as usize
    }

    /// Opens a micro-timer scope named `name`, nested under the scope
    /// currently open on this thread (or rooting a new subtree).
    #[inline]
    pub fn scope(&self, name: &str) -> ProfGuard {
        let Some(inner) = &self.inner else {
            return ProfGuard { active: None };
        };
        let tag = Self::tag(inner);
        let parent = PROF_STACK
            .with(|s| s.borrow().iter().rev().find(|e| e.0 == tag).map(|e| e.1))
            .unwrap_or(ROOT);
        let idx = {
            let mut arena = inner
                .arena
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match arena[parent].children.get(name) {
                Some(&idx) => idx,
                None => {
                    let idx = arena.len();
                    arena.push(Node::new(name));
                    arena[parent].children.insert(name.to_string(), idx);
                    idx
                }
            }
        };
        PROF_STACK.with(|s| s.borrow_mut().push((tag, idx)));
        ProfGuard {
            active: Some(ActiveScope {
                prof: self.clone(),
                tag,
                idx,
                start: wall_now(),
            }),
        }
    }

    /// Snapshot of the attribution tree. The returned root is
    /// synthetic (empty name); its children are the top-level scopes.
    /// Disabled profilers return an empty root.
    pub fn tree(&self) -> AttrNode {
        let Some(inner) = &self.inner else {
            return AttrNode::root();
        };
        let arena = inner
            .arena
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        fn build(arena: &[Node], idx: usize) -> AttrNode {
            let n = &arena[idx];
            AttrNode {
                name: n.name.clone(),
                total_ns: n.total_ns,
                count: n.count,
                children: n.children.values().map(|&c| build(arena, c)).collect(),
            }
        }
        build(&arena, ROOT)
    }
}

#[derive(Debug)]
struct ActiveScope {
    prof: Profiler,
    tag: usize,
    idx: usize,
    start: Instant,
}

/// RAII guard for an open profiler scope. Dropping it adds the elapsed
/// wall time (and one count) to the scope's tree node.
#[must_use = "dropping the guard immediately closes the scope"]
#[derive(Debug)]
pub struct ProfGuard {
    active: Option<ActiveScope>,
}

impl ProfGuard {
    pub(crate) fn noop() -> Self {
        Self { active: None }
    }

    /// Whether this guard belongs to an enabled profiler.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let elapsed_ns = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        PROF_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // scopes are lexically nested so drops are LIFO; tolerate misuse
            if let Some(pos) = stack.iter().rposition(|&e| e == (a.tag, a.idx)) {
                stack.remove(pos);
            }
        });
        if let Some(inner) = &a.prof.inner {
            let mut arena = inner
                .arena
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let node = &mut arena[a.idx];
            node.total_ns = node.total_ns.saturating_add(elapsed_ns);
            node.count += 1;
        }
    }
}

/// One node of an attribution tree: total (inclusive) time, entry
/// count, and children sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrNode {
    pub name: String,
    /// Inclusive wall time, nanoseconds.
    pub total_ns: u64,
    /// Number of times the scope was entered (0 for synthetic nodes).
    pub count: u64,
    /// Child scopes, sorted by name.
    pub children: Vec<AttrNode>,
}

impl AttrNode {
    /// An empty synthetic root.
    pub fn root() -> Self {
        Self {
            name: String::new(),
            total_ns: 0,
            count: 0,
            children: Vec::new(),
        }
    }

    /// Inclusive time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Sum of the children's inclusive times, nanoseconds.
    pub fn child_total_ns(&self) -> u64 {
        self.children.iter().map(|c| c.total_ns).sum()
    }

    /// Exclusive (self) time, nanoseconds: inclusive minus children.
    /// Saturates at zero (children on other threads can overlap).
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_total_ns())
    }

    /// Exclusive (self) time in milliseconds.
    pub fn self_ms(&self) -> f64 {
        self.self_ns() as f64 / 1e6
    }

    /// Fraction of this node's inclusive time attributed to children
    /// (1.0 for leaves and zero-time nodes).
    pub fn coverage(&self) -> f64 {
        if self.children.is_empty() || self.total_ns == 0 {
            1.0
        } else {
            self.child_total_ns() as f64 / self.total_ns as f64
        }
    }

    /// Child with `name`, if any.
    pub fn child(&self, name: &str) -> Option<&AttrNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Descends `path` from this node.
    pub fn get(&self, path: &[&str]) -> Option<&AttrNode> {
        let mut cur = self;
        for seg in path {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// First node named `name` in depth-first order (self included).
    pub fn find(&self, name: &str) -> Option<&AttrNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Sum of `total_ns` over every node named `name` (for scopes that
    /// root in several places, e.g. per-worker-thread subtrees).
    pub fn total_ns_of(&self, name: &str) -> u64 {
        let own = if self.name == name { self.total_ns } else { 0 };
        own + self
            .children
            .iter()
            .map(|c| c.total_ns_of(name))
            .sum::<u64>()
    }

    /// JSON encoding (schema mirrors the struct).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("total_ns".to_string(), Value::Num(self.total_ns as f64)),
            ("count".to_string(), Value::Num(self.count as f64)),
            (
                "children".to_string(),
                Value::Arr(self.children.iter().map(AttrNode::to_json).collect()),
            ),
        ])
    }

    /// Decodes [`to_json`](Self::to_json) output.
    pub fn from_json(v: &Value) -> Option<Self> {
        let name = v.get("name")?.as_str()?.to_string();
        let total_ns = v.get("total_ns")?.as_f64()? as u64;
        let count = v.get("count")?.as_f64()? as u64;
        let children = match v.get("children") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(AttrNode::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => Vec::new(),
        };
        Some(Self {
            name,
            total_ns,
            count,
            children,
        })
    }

    fn sort(&mut self) {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut self.children {
            c.sort();
        }
    }
}

/// Exports an attribution tree as folded stacks (one line per node
/// with nonzero self time: `frame;frame;frame weight`), weight in
/// whole microseconds. The format both `inferno-flamegraph` and
/// speedscope import directly. `root` is treated as synthetic and not
/// emitted as a frame.
pub fn to_folded(root: &AttrNode) -> String {
    fn walk(node: &AttrNode, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        if !path.is_empty() {
            let self_us = node.self_ns() / NS_PER_US;
            if self_us > 0 {
                out.push_str(&path);
                out.push(' ');
                out.push_str(&self_us.to_string());
                out.push('\n');
            }
        }
        for c in &node.children {
            walk(c, &path, out);
        }
    }
    let mut out = String::new();
    walk(root, "", &mut out);
    out
}

/// Parses folded stacks back into an attribution tree (weights become
/// self time in microseconds; counts are not representable in the
/// format and come back as 0). Malformed lines are skipped.
pub fn from_folded(s: &str) -> AttrNode {
    let mut root = AttrNode::root();
    for line in s.lines() {
        let Some((stack, weight)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(weight_us) = weight.trim().parse::<u64>() else {
            continue;
        };
        if stack.is_empty() {
            continue;
        }
        let add_ns = weight_us.saturating_mul(NS_PER_US);
        let mut cur = &mut root;
        cur.total_ns = cur.total_ns.saturating_add(add_ns);
        for frame in stack.split(';') {
            let pos = match cur.children.iter().position(|c| c.name == frame) {
                Some(p) => p,
                None => {
                    cur.children.push(AttrNode {
                        name: frame.to_string(),
                        total_ns: 0,
                        count: 0,
                        children: Vec::new(),
                    });
                    cur.children.len() - 1
                }
            };
            cur = &mut cur.children[pos];
            cur.total_ns = cur.total_ns.saturating_add(add_ns);
        }
    }
    root.sort();
    root.total_ns = 0; // the synthetic root carries no time of its own
    root
}

/// Builds an attribution tree from a JSONL event stream's span
/// records: every closed span contributes its `elapsed_ms` and one
/// count at the path formed by its parent chain. Spans whose parent
/// was filtered by verbosity root at the top; dangling spans (started,
/// never closed) appear structurally with zero time.
pub fn tree_from_jsonl(jsonl: &str) -> AttrNode {
    struct Rec {
        name: String,
        parent: Option<u64>,
        elapsed_ns: Option<u64>,
    }
    let mut spans: BTreeMap<u64, Rec> = BTreeMap::new();
    for line in jsonl.lines() {
        let Ok(v) = crate::json::parse(line) else {
            continue;
        };
        let t = v.get("t").and_then(Value::as_str).unwrap_or("");
        if t != "span_start" && t != "span_end" {
            continue;
        }
        let Some(id) = v.get("span").and_then(Value::as_u64) else {
            continue;
        };
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let parent = v.get("parent").and_then(Value::as_u64);
        let rec = spans.entry(id).or_insert(Rec {
            name,
            parent,
            elapsed_ns: None,
        });
        if t == "span_end" {
            if let Some(ms) = v.get("elapsed_ms").and_then(Value::as_f64) {
                rec.elapsed_ns = Some((ms.max(0.0) * 1e6) as u64);
            }
            if rec.parent.is_none() {
                rec.parent = parent;
            }
        }
    }
    let mut root = AttrNode::root();
    for (&id, rec) in &spans {
        // path of names from the root down to this span
        let mut path = vec![rec.name.as_str()];
        let mut up = rec.parent;
        let mut hops = 0;
        while let Some(pid) = up {
            if pid == id || hops > spans.len() {
                break; // cycle guard for corrupt streams
            }
            let Some(p) = spans.get(&pid) else { break };
            path.push(p.name.as_str());
            up = p.parent;
            hops += 1;
        }
        path.reverse();
        let mut cur = &mut root;
        for frame in &path {
            let pos = match cur.children.iter().position(|c| c.name == **frame) {
                Some(p) => p,
                None => {
                    cur.children.push(AttrNode {
                        name: (*frame).to_string(),
                        total_ns: 0,
                        count: 0,
                        children: Vec::new(),
                    });
                    cur.children.len() - 1
                }
            };
            cur = &mut cur.children[pos];
        }
        if let Some(ns) = rec.elapsed_ns {
            cur.total_ns = cur.total_ns.saturating_add(ns);
            cur.count += 1;
        }
    }
    root.sort();
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let g = p.scope("x");
        assert!(!g.is_active());
        drop(g);
        let t = p.tree();
        assert!(t.children.is_empty());
    }

    #[test]
    fn scopes_nest_and_aggregate() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            let _outer = p.scope("solve");
            let _inner = p.scope("pricing");
        }
        {
            let _outer = p.scope("solve");
            let _inner = p.scope("update");
        }
        let t = p.tree();
        let solve = t.child("solve").expect("solve node");
        assert_eq!(solve.count, 4);
        assert_eq!(solve.children.len(), 2);
        assert_eq!(solve.child("pricing").map(|n| n.count), Some(3));
        assert_eq!(solve.child("update").map(|n| n.count), Some(1));
        assert!(solve.total_ns >= solve.child_total_ns());
    }

    #[test]
    fn worker_threads_root_their_own_subtrees() {
        let p = Profiler::enabled();
        let _main = p.scope("main");
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = p.clone();
                // clk-analyze: allow(A101) PROF_STACK is thread_local; this test pins exactly that per-thread isolation
                s.spawn(move || {
                    let _g = p.scope("worker.eval");
                });
            }
        });
        let t = p.tree();
        // worker scopes did not nest under "main" (different threads)
        assert_eq!(t.child("worker.eval").map(|n| n.count), Some(2));
        assert!(t
            .child("main")
            .is_some_and(|m| m.child("worker.eval").is_none()));
    }

    #[test]
    fn two_profilers_do_not_cross_link() {
        let a = Profiler::enabled();
        let b = Profiler::enabled();
        let _ga = a.scope("a.outer");
        let _gb = b.scope("b.scope");
        drop(a.scope("a.inner"));
        let tb = b.tree();
        assert!(tb.find("a.inner").is_none());
        let ta = a.tree();
        assert!(ta.get(&["a.outer", "a.inner"]).is_some());
    }

    fn leaf(name: &str, self_us: u64) -> AttrNode {
        AttrNode {
            name: name.to_string(),
            total_ns: self_us * NS_PER_US,
            count: 1,
            children: Vec::new(),
        }
    }

    #[test]
    fn folded_round_trips_weights() {
        let tree = AttrNode {
            name: String::new(),
            total_ns: 0,
            count: 0,
            children: vec![AttrNode {
                name: "lp.solve".to_string(),
                total_ns: 100 * NS_PER_US,
                count: 2,
                children: vec![leaf("pricing", 40), leaf("ratio_test", 35)],
            }],
        };
        let folded = to_folded(&tree);
        assert_eq!(
            folded,
            "lp.solve 25\nlp.solve;pricing 40\nlp.solve;ratio_test 35\n"
        );
        let back = from_folded(&folded);
        assert_eq!(to_folded(&back), folded);
        assert_eq!(
            back.child("lp.solve").map(|n| n.total_ns),
            Some(tree.children[0].total_ns)
        );
    }

    #[test]
    fn tree_from_jsonl_attributes_closed_spans() {
        let jsonl = concat!(
            r#"{"t":"span_start","seq":0,"ts_ms":0.0,"span":0,"level":"info","name":"flow"}"#,
            "\n",
            r#"{"t":"span_start","seq":1,"ts_ms":1.0,"span":1,"parent":0,"level":"info","name":"phase.global"}"#,
            "\n",
            r#"{"t":"span_end","seq":2,"ts_ms":5.0,"span":1,"parent":0,"level":"info","name":"phase.global","elapsed_ms":4.0}"#,
            "\n",
            r#"{"t":"span_start","seq":3,"ts_ms":5.0,"span":2,"parent":0,"level":"info","name":"dangling"}"#,
            "\n",
            r#"{"t":"span_end","seq":4,"ts_ms":9.0,"span":0,"level":"info","name":"flow","elapsed_ms":9.0}"#,
            "\n",
        );
        let t = tree_from_jsonl(jsonl);
        let flow = t.child("flow").expect("flow");
        assert_eq!(flow.count, 1);
        assert_eq!(flow.total_ns, 9_000_000);
        let global = flow.child("phase.global").expect("global");
        assert_eq!((global.count, global.total_ns), (1, 4_000_000));
        // the dangling span is present structurally but carries no time
        let dangling = flow.child("dangling").expect("dangling");
        assert_eq!((dangling.count, dangling.total_ns), (0, 0));
    }
}
