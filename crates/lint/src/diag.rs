//! Diagnostics: what a lint pass reports.

use clk_netlist::{ArcId, NodeId};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intended (e.g. a DRC budget overrun on a
    /// generated testcase).
    Warning,
    /// An invariant violation; the database is not safe to optimize.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Where in the design a finding is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locus {
    /// The design as a whole (shape mismatches, global counts).
    Design,
    /// A clock-tree node.
    Node(NodeId),
    /// An arc of the junction-to-junction arc view.
    Arc(ArcId),
    /// A sink pair, by index into `ClockTree::sink_pairs`.
    Pair(usize),
    /// An LP decision variable, by index.
    Var(usize),
    /// An LP constraint row, by index.
    Row(usize),
}

impl std::fmt::Display for Locus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Locus::Design => f.write_str("design"),
            Locus::Node(n) => write!(f, "{n}"),
            Locus::Arc(a) => write!(f, "arc{}", a.0),
            Locus::Pair(i) => write!(f, "pair{i}"),
            Locus::Var(i) => write!(f, "var{i}"),
            Locus::Row(i) => write!(f, "row{i}"),
        }
    }
}

/// One lint finding: a stable code, a severity, a locus and a message.
///
/// Codes are stable identifiers (`S001`, `G002`, ...) that tests and
/// tooling may match on; messages are for humans and carry no stability
/// guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"S001"`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Anchor in the design.
    pub locus: Locus,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// An `Error`-severity finding.
    pub fn error(code: &'static str, locus: Locus, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            locus,
            message,
        }
    }

    /// A `Warning`-severity finding.
    pub fn warning(code: &'static str, locus: Locus, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            locus,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity, self.code, self.locus, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        let d = Diagnostic::error("S001", Locus::Node(NodeId(3)), "bad link".to_string());
        assert_eq!(d.to_string(), "error [S001] at n3: bad link");
        let w = Diagnostic::warning("T002", Locus::Design, "hot".to_string());
        assert_eq!(w.to_string(), "warning [T002] at design: hot");
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
