//! Fig. 2: stage-delay ratios between corner pairs (c1, c0) and (c2, c0)
//! as functions of stage delay per unit distance at c0, with the fitted
//! polynomial W_min / W_max feasibility bounds (red curves of the paper).

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_liberty::{CornerId, Library, StdCorners};
use clk_skewopt::lut::{fit_ratio_bounds, ratio_scatter, StageLuts};

fn main() {
    let lib = Library::synthetic_28nm(StdCorners::all());
    println!("characterizing stage LUTs (5 sizes x 39 spacings x 4 corners)...");
    let luts = StageLuts::characterize(&lib);

    for (k, label) in [(CornerId(1), "c1/c0"), (CornerId(2), "c2/c0")] {
        let scatter = ratio_scatter(&luts, k, CornerId(0));
        let bounds = fit_ratio_bounds(&scatter, 0.03);
        println!("\n=== delay ratio {label} vs stage delay per um at c0 ===");
        println!(
            "W_min poly (low->high power): {:?}",
            rounded(bounds.poly_lo())
        );
        println!(
            "W_max poly (low->high power): {:?}",
            rounded(bounds.poly_hi())
        );
        // bin the scatter for a compact view
        let xs: Vec<f64> = scatter.iter().map(|p| p.0).collect();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>12} {:>8} {:>8} {:>8} | {:>8} {:>8}",
            "x (ps/um)", "points", "min r", "max r", "W_min", "W_max"
        );
        let n_bins = 8;
        for b in 0..n_bins {
            let a = lo + (hi - lo) * f64::from(b) / f64::from(n_bins);
            let z = lo + (hi - lo) * f64::from(b + 1) / f64::from(n_bins);
            let in_bin: Vec<f64> = scatter
                .iter()
                .filter(|p| p.0 >= a && (p.0 < z || b == n_bins - 1))
                .map(|p| p.1)
                .collect();
            if in_bin.is_empty() {
                continue;
            }
            let rmin = in_bin.iter().copied().fold(f64::INFINITY, f64::min);
            let rmax = in_bin.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (wlo, whi) = bounds.bounds(0.5 * (a + z));
            println!(
                "{:>12} {:>8} {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
                format!("{a:.2}-{z:.2}"),
                in_bin.len(),
                rmin,
                rmax,
                wlo,
                whi
            );
        }
        let mean: f64 = scatter.iter().map(|p| p.1).sum::<f64>() / scatter.len() as f64;
        println!(
            "mean ratio {label}: {mean:.3}  ({} scatter points)",
            scatter.len()
        );
    }
    println!("\npaper: c1/c0 sits well above 1, c2/c0 well below 1; any ratio outside");
    println!("the corridor is unreachable with the available buffer-insertion solutions");
}

fn rounded(p: &[f64]) -> Vec<f64> {
    p.iter().map(|c| (c * 1e4).round() / 1e4).collect()
}
