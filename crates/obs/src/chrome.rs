//! Chrome trace-event exporter.
//!
//! Converts the JSONL event stream produced by [`JsonlSink`] into the
//! Chrome trace-event JSON format understood by `about://tracing` and
//! [Perfetto](https://ui.perfetto.dev): spans become `ph: "B"` / `ph:
//! "E"` duration pairs, point events and faults become `ph: "i"`
//! instants. Timestamps are microseconds since the pipeline epoch, as
//! the format requires.
//!
//! The JSONL stream does not record thread ids, so spans are assigned
//! to synthetic tracks (`tid`) greedily such that within one track the
//! `B`/`E` pairs nest properly — concurrent sibling spans land on
//! separate tracks instead of producing a malformed stack.
//!
//! [`JsonlSink`]: crate::JsonlSink

use crate::json::{self, Value};

/// One span reconstructed from its `span_start` / `span_end` records.
struct SpanRec {
    id: u64,
    name: String,
    start_us: f64,
    end_us: f64,
    start_fields: Vec<(String, Value)>,
    end_fields: Vec<(String, Value)>,
}

/// One instant (point event or fault).
struct InstantRec {
    name: String,
    ts_us: f64,
    cat: &'static str,
    span: Option<u64>,
    fields: Vec<(String, Value)>,
}

fn fields_of(v: &Value) -> Vec<(String, Value)> {
    match v.get("fields") {
        Some(Value::Obj(pairs)) => pairs.clone(),
        _ => Vec::new(),
    }
}

/// Converts one JSONL trace into a list of Chrome trace events.
///
/// `pid` is stamped on every event, so multiple independent traces
/// (e.g. one flow run per testcase) can be merged into a single file
/// as separate processes.
///
/// # Errors
///
/// The 1-based line number and message of the first JSONL line that
/// does not parse.
pub fn trace_events_from_jsonl(jsonl: &str, pid: u64) -> Result<Vec<Value>, String> {
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut open: Vec<usize> = Vec::new(); // indices of spans awaiting an end
    let mut instants: Vec<InstantRec> = Vec::new();
    let mut max_us: f64 = 0.0;

    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = v.get("t").and_then(Value::as_str).unwrap_or("");
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let ts_us = v.get("ts_ms").and_then(Value::as_f64).unwrap_or(0.0) * 1e3;
        max_us = max_us.max(ts_us);
        match kind {
            "span_start" => {
                let Some(id) = v.get("span").and_then(Value::as_u64) else {
                    continue;
                };
                open.push(spans.len());
                spans.push(SpanRec {
                    id,
                    name,
                    start_us: ts_us,
                    end_us: f64::NAN, // patched by the matching span_end
                    start_fields: fields_of(&v),
                    end_fields: Vec::new(),
                });
            }
            "span_end" => {
                let id = v.get("span").and_then(Value::as_u64);
                if let Some(pos) = open.iter().rposition(|&s| Some(spans[s].id) == id) {
                    let s = open.remove(pos);
                    spans[s].end_us = ts_us;
                    spans[s].end_fields = fields_of(&v);
                }
            }
            "event" | "fault" => {
                instants.push(InstantRec {
                    name,
                    ts_us,
                    cat: if kind == "fault" { "fault" } else { "event" },
                    span: v.get("span").and_then(Value::as_u64),
                    fields: fields_of(&v),
                });
            }
            // metrics / flight_dump records carry no timeline shape
            _ => {}
        }
    }
    // close dangling spans (e.g. a truncated stream) at the last
    // timestamp so every B still has an E
    for s in &mut spans {
        if !s.end_us.is_finite() {
            s.end_us = max_us.max(s.start_us);
        }
    }

    // assign spans to tracks so B/E nest properly per tid: sort outer
    // spans first, then place each span on the first track whose open
    // top still contains it
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .start_us
            .total_cmp(&spans[b].start_us)
            .then(spans[b].end_us.total_cmp(&spans[a].end_us))
    });
    let mut tracks: Vec<Vec<usize>> = Vec::new(); // per-track open stacks
    let mut tid_of: Vec<u64> = vec![0; spans.len()];
    let mut depth_of: Vec<usize> = vec![0; spans.len()];
    for &s in &order {
        let (start, end) = (spans[s].start_us, spans[s].end_us);
        let mut chosen = None;
        for (t, stack) in tracks.iter_mut().enumerate() {
            while let Some(&top) = stack.last() {
                if spans[top].end_us <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            let fits = stack.last().is_none_or(|&top| spans[top].end_us >= end);
            if fits {
                chosen = Some(t);
                break;
            }
        }
        let t = chosen.unwrap_or_else(|| {
            tracks.push(Vec::new());
            tracks.len() - 1
        });
        depth_of[s] = tracks[t].len();
        tracks[t].push(s);
        tid_of[s] = t as u64 + 1;
    }

    // sort key: at equal ts, E before B (a sibling must close before the
    // next opens); among Es deeper spans close first, among Bs shallower
    // spans open first; instants come last
    #[derive(Clone)]
    struct Keyed {
        ts: f64,
        rank: u8,
        depth: i64,
        ev: Value,
    }
    let mut events: Vec<Keyed> = Vec::new();
    let mut push = |ts: f64, rank: u8, depth: i64, ev: Value| {
        events.push(Keyed {
            ts,
            rank,
            depth,
            ev,
        });
    };
    let trace_event =
        |name: &str, cat: &str, ph: &str, ts: f64, tid: u64, args: &[(String, Value)]| {
            let mut pairs = vec![
                ("name".to_string(), Value::from(name)),
                ("cat".to_string(), Value::from(cat)),
                ("ph".to_string(), Value::from(ph)),
                ("ts".to_string(), Value::Num((ts * 1e3).round() / 1e3)),
                ("pid".to_string(), Value::from(pid)),
                ("tid".to_string(), Value::from(tid)),
            ];
            if ph == "i" {
                pairs.push(("s".to_string(), Value::from("t")));
            }
            if !args.is_empty() {
                pairs.push(("args".to_string(), Value::Obj(args.to_vec())));
            }
            Value::Obj(pairs)
        };
    for (i, s) in spans.iter().enumerate() {
        let tid = tid_of[i];
        let d = depth_of[i] as i64;
        push(
            s.start_us,
            1,
            d,
            trace_event(&s.name, "span", "B", s.start_us, tid, &s.start_fields),
        );
        push(
            s.end_us,
            0,
            -d,
            trace_event(&s.name, "span", "E", s.end_us, tid, &s.end_fields),
        );
    }
    let tid_of_span = |id: Option<u64>| -> u64 {
        id.and_then(|id| spans.iter().position(|s| s.id == id))
            .map_or(0, |i| tid_of[i])
    };
    for inst in &instants {
        let tid = tid_of_span(inst.span);
        push(
            inst.ts_us,
            2,
            0,
            trace_event(&inst.name, inst.cat, "i", inst.ts_us, tid, &inst.fields),
        );
    }
    events.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then(a.rank.cmp(&b.rank))
            .then(a.depth.cmp(&b.depth))
    });
    Ok(events.into_iter().map(|k| k.ev).collect())
}

/// Wraps trace events into a complete Chrome trace document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn trace_document(events: Vec<Value>) -> Value {
    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(events)),
        ("displayTimeUnit".to_string(), Value::from("ms")),
    ])
}

/// One-shot: JSONL trace text in, Chrome trace JSON text out.
///
/// # Errors
///
/// See [`trace_events_from_jsonl`].
pub fn chrome_trace_from_jsonl(jsonl: &str) -> Result<String, String> {
    Ok(trace_document(trace_events_from_jsonl(jsonl, 1)?).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Obs, ObsConfig, SharedBuf};

    fn traced_run() -> String {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Trace,
            ..ObsConfig::default()
        });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        {
            let _flow = obs.span("flow");
            {
                let mut g = obs.span("phase.global");
                g.record("rounds", 2u64);
                obs.event(Level::Debug, "global.retry", vec![crate::kv("step", 1u64)]);
            }
            let _l = obs.span("phase.local");
        }
        obs.flush();
        buf.contents()
    }

    /// Walks every track's B/E records checking stack discipline.
    fn assert_be_paired(events: &[Value]) {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap();
            let tid = ev.get("tid").and_then(Value::as_u64).unwrap();
            let name = ev.get("name").and_then(Value::as_str).unwrap().to_string();
            match ph {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => {
                    let top = stacks.get_mut(&tid).and_then(std::vec::Vec::pop);
                    assert_eq!(top.as_deref(), Some(name.as_str()), "unbalanced E");
                }
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
        }
    }

    #[test]
    fn spans_become_paired_b_e_events() {
        let text = chrome_trace_from_jsonl(&traced_run()).unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        let b = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("E"))
            .count();
        assert_eq!(b, 3);
        assert_eq!(b, e);
        assert_be_paired(events);
        // span end-fields survive on the E record
        let global_end = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("E")
                    && e.get("name").and_then(Value::as_str) == Some("phase.global")
            })
            .unwrap();
        assert_eq!(
            global_end
                .get("args")
                .and_then(|a| a.get("rounds"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn events_become_thread_scoped_instants() {
        let events = trace_events_from_jsonl(&traced_run(), 7).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .unwrap();
        assert_eq!(
            inst.get("name").and_then(Value::as_str),
            Some("global.retry")
        );
        assert_eq!(inst.get("s").and_then(Value::as_str), Some("t"));
        assert_eq!(inst.get("pid").and_then(Value::as_u64), Some(7));
        // the instant rides on the same track as its enclosing span
        let tid = inst.get("tid").and_then(Value::as_u64).unwrap();
        assert!(tid >= 1);
    }

    #[test]
    fn overlapping_spans_get_separate_tracks() {
        // hand-written stream: two spans overlap without nesting, which
        // a single B/E track cannot represent
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"a\"}\n",
            "{\"t\":\"span_start\",\"seq\":1,\"ts_ms\":1.0,\"span\":1,\"level\":\"info\",\"name\":\"b\"}\n",
            "{\"t\":\"span_end\",\"seq\":2,\"ts_ms\":2.0,\"span\":0,\"level\":\"info\",\"name\":\"a\",\"elapsed_ms\":2.0}\n",
            "{\"t\":\"span_end\",\"seq\":3,\"ts_ms\":3.0,\"span\":1,\"level\":\"info\",\"name\":\"b\",\"elapsed_ms\":2.0}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Value::as_u64))
            .collect();
        assert_eq!(tids.len(), 2, "overlap must split tracks");
    }

    #[test]
    fn dangling_span_is_closed_at_last_ts() {
        let jsonl = concat!(
            "{\"t\":\"span_start\",\"seq\":0,\"ts_ms\":0.0,\"span\":0,\"level\":\"info\",\"name\":\"flow\"}\n",
            "{\"t\":\"event\",\"seq\":1,\"ts_ms\":5.5,\"level\":\"info\",\"name\":\"tick\"}\n",
        );
        let events = trace_events_from_jsonl(jsonl, 1).unwrap();
        assert_be_paired(&events);
        let end = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("E"))
            .unwrap();
        assert!((end.get("ts").and_then(Value::as_f64).unwrap() - 5500.0).abs() < 1e-6);
    }

    #[test]
    fn bad_jsonl_reports_line_number() {
        let err = trace_events_from_jsonl("{\"t\":\"event\"}\nnot json\n", 1).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
