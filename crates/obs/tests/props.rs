//! Property and concurrency tests for the `clk-obs` primitives:
//! histogram quantiles against a sorted-vec oracle, histogram-snapshot
//! merging, the folded-stack exporter, counter updates from racing
//! threads, and JSONL sink round-trip parsing.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic, clippy::float_cmp)]

use clk_obs::profile::{from_folded, to_folded};
use clk_obs::{json, kv, AttrNode, HistSnapshot, Level, Obs, ObsConfig, SharedBuf, Value};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sample set — the oracle the
/// log-linear histogram is checked against.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn histogram_quantiles_track_oracle(
        samples in prop::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = oracle_quantile(&sorted, q);
        let est = snap.quantile(q);
        // log-linear buckets are ~9% wide; allow 15% relative slack
        prop_assert!(
            (est - exact).abs() <= exact.abs() * 0.15 + 1e-9,
            "q={} est={} exact={}", q, est, exact
        );

        let exact_sum: f64 = samples.iter().sum();
        prop_assert!((snap.sum - exact_sum).abs() <= exact_sum.abs() * 1e-9 + 1e-9);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, sorted[sorted.len() - 1]);
    }

    fn histogram_handles_zero_and_negative(
        samples in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        // quantiles stay inside the observed range
        for &q in &[0.0, 0.5, 1.0] {
            let est = snap.quantile(q);
            prop_assert!(est >= snap.min - 1e-12 && est <= snap.max + 1e-12);
        }
    }

    fn jsonl_round_trips_arbitrary_fields(
        n in 0u64..1_000_000,
        x in -1e9f64..1e9,
        s in prop::collection::vec(0u8..128, 0..32),
    ) {
        let text: String = s.into_iter().map(|b| b as char).collect();
        let obs = Obs::new(ObsConfig { verbosity: Level::Trace, ..ObsConfig::default() });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        obs.event(
            Level::Debug,
            "prop.event",
            vec![kv("n", n), kv("x", x), kv("s", text.as_str())],
        );
        obs.flush();
        let line = buf.contents();
        let v = json::parse(line.trim()).expect("emitted line parses");
        let fields = v.get("fields").expect("fields present");
        prop_assert_eq!(fields.get("n").and_then(Value::as_u64), Some(n));
        let got_x = fields.get("x").and_then(Value::as_f64).expect("x");
        prop_assert!((got_x - x).abs() <= x.abs() * 1e-12 + 1e-12);
        prop_assert_eq!(fields.get("s").and_then(Value::as_str), Some(text.as_str()));
    }
}

/// Builds an attribution tree from `(path, self_us)` leaves with
/// whole-microsecond self times, the unit the folded format carries
/// exactly.
fn tree_from_paths(paths: &[(Vec<String>, u64)]) -> AttrNode {
    fn insert(node: &mut AttrNode, path: &[String], self_us: u64) {
        node.total_ns += self_us * 1000;
        let Some((head, rest)) = path.split_first() else {
            return;
        };
        let at = match node.children.iter().position(|c| &c.name == head) {
            Some(i) => i,
            None => {
                let mut fresh = AttrNode::root();
                fresh.name = head.clone();
                node.children.push(fresh);
                node.children.len() - 1
            }
        };
        node.children[at].count += 1;
        insert(&mut node.children[at], rest, self_us);
    }
    fn sort(node: &mut AttrNode) {
        node.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut node.children {
            sort(c);
        }
    }
    let mut root = AttrNode::root();
    for (path, self_us) in paths {
        insert(&mut root, path, *self_us);
    }
    sort(&mut root);
    root
}

/// Total folded weight (µs) of a folded-stack document.
fn folded_weight(s: &str) -> u64 {
    s.lines()
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, w)| w.parse::<u64>().ok())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_folded` → `from_folded` → `to_folded` is a fixpoint, and
    /// the total self-time weight survives the round trip.
    fn folded_stack_round_trips(
        raw in prop::collection::vec(
            (prop::collection::vec(0usize..4, 1..4), 0u64..5000),
            1..24,
        ),
    ) {
        const FRAMES: [&str; 4] = ["lp.solve", "pricing", "ratio_test", "basis_update"];
        let paths: Vec<(Vec<String>, u64)> = raw
            .into_iter()
            .map(|(segs, w)| (segs.into_iter().map(|i| FRAMES[i].to_string()).collect(), w))
            .collect();
        let tree = tree_from_paths(&paths);
        let folded = to_folded(&tree);
        let back = from_folded(&folded);
        let folded2 = to_folded(&back);
        prop_assert_eq!(&folded, &folded2, "round trip must be a fixpoint");
        // every whole-µs self weight is representable, so nothing is
        // lost to truncation and the totals must agree exactly
        let total_us: u64 = paths.iter().map(|(_, w)| *w).sum();
        prop_assert_eq!(folded_weight(&folded), total_us);
        prop_assert_eq!(folded_weight(&folded2), total_us);
    }

    /// Merging two snapshots equals snapshotting one histogram fed
    /// both sample sets (modulo float summation order).
    fn hist_merge_matches_combined_histogram(
        a in prop::collection::vec(1e-3f64..1e4, 0..80),
        b in prop::collection::vec(1e-3f64..1e4, 0..80),
    ) {
        let (ha, hb, hab) = (
            clk_obs::Histogram::default(),
            clk_obs::Histogram::default(),
            clk_obs::Histogram::default(),
        );
        for &v in &a { ha.observe(v); hab.observe(v); }
        for &v in &b { hb.observe(v); hab.observe(v); }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let combined = hab.snapshot();
        prop_assert_eq!(merged.count, combined.count);
        prop_assert_eq!(merged.min, combined.min);
        prop_assert_eq!(merged.max, combined.max);
        prop_assert_eq!(&merged.buckets, &combined.buckets);
        prop_assert!((merged.sum - combined.sum).abs() <= combined.sum.abs() * 1e-12 + 1e-12);
    }
}

#[test]
fn hist_merge_of_two_empties_is_empty() {
    let mut a = HistSnapshot::default();
    a.merge(&HistSnapshot::default());
    assert_eq!(a.count, 0);
    assert_eq!(a.sum, 0.0);
    assert!(a.buckets.is_empty());
    assert_eq!(a.quantile(0.5), 0.0);
}

#[test]
fn hist_merge_into_empty_clones_the_other_side() {
    let h = clk_obs::Histogram::default();
    h.observe(3.5);
    h.observe(7.0);
    let other = h.snapshot();
    let mut empty = HistSnapshot::default();
    empty.merge(&other);
    assert_eq!(empty, other);
    // and the reverse direction leaves the populated side unchanged
    let mut populated = other.clone();
    populated.merge(&HistSnapshot::default());
    assert_eq!(populated, other);
}

#[test]
fn hist_merge_single_bucket_accumulates() {
    // identical samples land in one bucket; merging adds counts there
    let (h1, h2) = (clk_obs::Histogram::default(), clk_obs::Histogram::default());
    for _ in 0..3 {
        h1.observe(42.0);
    }
    for _ in 0..5 {
        h2.observe(42.0);
    }
    let mut s = h1.snapshot();
    s.merge(&h2.snapshot());
    assert_eq!(s.count, 8);
    assert_eq!(s.buckets.len(), 1);
    assert_eq!(s.buckets[0].1, 8);
    assert_eq!(s.min, 42.0);
    assert_eq!(s.max, 42.0);
}

#[test]
#[should_panic(expected = "mismatched histogram boundaries")]
fn hist_merge_rejects_foreign_bucket_ranges() {
    let mut a = HistSnapshot::default();
    let foreign = HistSnapshot {
        count: 1,
        sum: 1.0,
        min: 1.0,
        max: 1.0,
        buckets: vec![(u32::MAX, 1)],
    };
    a.merge(&foreign);
}

#[test]
fn counters_survive_racing_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let obs = Obs::new(ObsConfig::default());
    let counter = obs.counter("race.hits").expect("enabled");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = std::sync::Arc::clone(&counter);
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // exercise the by-name path concurrently too
                    if i % 100 == 0 {
                        obs.count("race.named", 1);
                    }
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let snap = obs.metrics_snapshot().expect("enabled");
    match snap.get("race.named") {
        Some(clk_obs::MetricValue::Counter(n)) => {
            assert_eq!(*n, (THREADS as u64) * (PER_THREAD / 100));
        }
        other => panic!("expected counter, got {other:?}"),
    }
}

#[test]
fn histogram_observe_is_thread_safe() {
    let obs = Obs::new(ObsConfig::default());
    let hist = obs.histogram("race.ms").expect("enabled");
    std::thread::scope(|scope| {
        for t in 0..4 {
            let hist = std::sync::Arc::clone(&hist);
            scope.spawn(move || {
                for i in 1..=1000u32 {
                    hist.observe(f64::from(i + t * 1000));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 4000);
    assert_eq!(snap.min, 1.0);
    assert_eq!(snap.max, 4000.0);
}

#[test]
fn jsonl_stream_of_full_run_parses_line_by_line() {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Trace,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);
    {
        let mut flow = obs.span("flow");
        for round in 0..3u64 {
            let mut span = obs.span_at(Level::Debug, "global.round", vec![kv("round", round)]);
            span.record("lp_iters", round * 7);
        }
        obs.fault("timer_timeout", 0, vec![kv("phase", "local")]);
        flow.record("rounds", 3u64);
    }
    obs.emit_metrics();
    obs.flush();
    let contents = buf.contents();
    let mut kinds = std::collections::BTreeMap::new();
    for line in contents.lines() {
        let v = json::parse(line).expect("line parses");
        let t = v
            .get("t")
            .and_then(Value::as_str)
            .expect("t present")
            .to_string();
        *kinds.entry(t).or_insert(0u32) += 1;
    }
    assert_eq!(kinds.get("span_start"), Some(&4));
    assert_eq!(kinds.get("span_end"), Some(&4));
    assert_eq!(kinds.get("fault"), Some(&1));
    assert_eq!(kinds.get("flight_dump"), Some(&1));
    assert_eq!(kinds.get("metrics"), Some(&1));
}
