// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! The golden timer — the PrimeTime-class timing-analysis substrate.
//!
//! [`Timer`] propagates arrival times and transitions from the clock source
//! through a [`clk_netlist::ClockTree`] at one corner:
//!
//! * each driver's fanout net is extracted to a distributed RC tree
//!   ([`clk_delay::RcTree`]) from the **actual routed paths**,
//! * gate delay and output slew come from the library NLDM tables,
//! * wire delay uses D2M (or Elmore) and receiver slews use PERI merging.
//!
//! On top of per-corner latencies, [`skew`] computes the paper's metrics:
//! signed pair skews, the per-corner normalization factors `α_k`, the
//! normalized skew variation `v`/`V` of Eqs. (1)–(3), and the
//! sum-of-variation objective of Table 5. [`power`] reports clock-tree
//! switching + leakage power.
//!
//! # Examples
//!
//! ```
//! use clk_geom::Point;
//! use clk_liberty::{Library, StdCorners, CornerId};
//! use clk_netlist::{ClockTree, NodeKind};
//! use clk_sta::Timer;
//!
//! let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
//! let x8 = lib.cell_by_name("CLKINV_X8").expect("exists");
//! let mut tree = ClockTree::new(Point::new(0, 0), x8);
//! let b = tree.add_node(NodeKind::Buffer(x8), Point::new(80_000, 0), tree.root());
//! let s = tree.add_node(NodeKind::Sink, Point::new(160_000, 10_000), b);
//! let timing = Timer::golden().analyze(&tree, &lib, CornerId(0));
//! assert!(timing.arrival_ps(s) > 0.0);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]
pub mod power;
pub mod report;
pub mod skew;
pub mod timer;

pub use power::{clock_power, PowerReport};
pub use skew::{
    alpha_factors, local_skew_ps, pair_skews, skew_ratios, try_pair_skews, variation_report,
    VariationReport,
};
pub use timer::{arc_delays_ps, CornerTiming, Timer, TimerOptions, TimingError, Violation};
