//! Property tests: the tokenizer and the passes are total — arbitrary
//! byte soup, malformed Rust, and truncated literals must never panic,
//! and the lexer's line numbers must stay within the input.

use clk_analyze::{analyze_str, tokenize, AnalyzeConfig};
use proptest::prelude::*;

/// Fragments of everything the passes pattern-match on; the soup
/// strategy splices them into pathological arrangements.
const FRAGMENTS: &[&str] = &[
    "for",
    "in",
    "let",
    "mut",
    "HashMap",
    "HashSet",
    "Instant",
    "::",
    "now",
    "static",
    "thread_local",
    "!",
    "unwrap",
    "expect",
    ".",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "+=",
    "sum",
    "#",
    "[",
    "cfg",
    "test",
    "]",
    "mod",
    ";",
    "=",
    "&",
    "x",
    "m",
    "0.5",
    "1e9",
    "RefCell",
    "Cell",
    "SystemTime",
    "iter",
    "keys",
    "values",
    "drain",
    "into_iter",
    "'a",
    "'x'",
    "\"s\"",
    "r#\"r\"#",
    "// clk-analyze: allow(A001)",
    "// clk-analyze: allow(A001, A003) because",
    "/* block */",
    "\"",
    "'",
    "/*",
    "panic",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn tokenizer_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let (toks, comments) = tokenize(&src);
        let line_count = src.lines().count() as u32 + 1;
        for t in &toks {
            prop_assert!(t.line >= 1 && t.line <= line_count);
        }
        for c in &comments {
            prop_assert!(c.line >= 1 && c.line <= line_count);
        }
    }

    fn passes_never_panic_on_fragment_soup(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), 0u8..=7u8), 0..120),
    ) {
        let mut src = String::new();
        for &(idx, sep) in &picks {
            src.push_str(FRAGMENTS[idx]);
            src.push(match sep {
                0 => '\n',
                1 => '\t',
                _ => ' ',
            });
        }
        // hot-path file so every pass (incl. Cell/RefCell A004) runs
        let _ = analyze_str("crates/core/src/local.rs", &src, &AnalyzeConfig::default());
    }

    fn passes_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = analyze_str("crates/x/src/lib.rs", &src, &AnalyzeConfig::default());
    }
}

#[test]
fn truncated_literals_are_total() {
    for src in [
        "\"",
        "r\"",
        "r#\"",
        "b\"",
        "br##\"x",
        "'",
        "'\\'",
        "'a",
        "/*",
        "/**/",
        "//",
        "for x in",
        "let m: HashMap<",
        "#[cfg(test)]",
        "m.",
        "m.iter",
        "1e",
        "0.",
        "for x in m.",
        "let m = HashMap::new()",
        "static",
        "static mut",
    ] {
        let _ = analyze_str("crates/x/src/lib.rs", src, &AnalyzeConfig::default());
    }
}
