//! Minimal JSON value model, serializer and parser.
//!
//! The build environment is offline (no `serde`), so the JSONL sink and
//! its consumers (`obs-report`, the chaos harness, round-trip tests)
//! share this hand-rolled implementation. It covers exactly the JSON
//! subset the event schema emits: objects, arrays, strings, finite
//! numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content rounded to u64 if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Num(v as f64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Num(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first syntax
/// error, including trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Convenience: an object value from key/value pairs.
pub fn obj(pairs: Vec<(String, Value)>) -> Value {
    Value::Obj(pairs)
}

/// Convenience: an ordered object from a `BTreeMap`.
pub fn obj_from_map(map: BTreeMap<String, Value>) -> Value {
    Value::Obj(map.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\ny"}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\ny"));
    }

    #[test]
    fn writer_escapes_and_parser_round_trips() {
        let v = Value::Obj(vec![
            (
                "k\"ey".to_string(),
                Value::Str("a\\b\n\tc\u{1}".to_string()),
            ),
            ("n".to_string(), Value::Num(-12.75)),
            (
                "arr".to_string(),
                Value::Arr(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }
}
