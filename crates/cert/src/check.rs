//! The certificate checker: exact re-verification of simplex outcomes.
//!
//! All arithmetic below is on [`BigRat`] values decoded from the `f64`
//! bit patterns of the problem and the certificate; every comparison is
//! an exact total-order comparison of dyadic rationals. Tolerances are
//! exact too: a check of "`r` is numerically zero" is `|r| ≤ ε·(1 + M)`
//! where `ε = 2^eps_exp` and `M` is the exactly-accumulated magnitude of
//! the terms that produced `r` (so the band scales with the data instead
//! of hiding a hard-coded float).
//!
//! The checker mirrors the solver's internal variable space: the `n`
//! structural variables first, then one slack per row with bounds
//! `Le → [0, ∞)`, `Ge → (−∞, 0]`, `Eq → [0, 0]`, so that `Ax + s = b`
//! holds exactly by construction and every claim reduces to bound,
//! sign, and agreement checks.

use std::cmp::Ordering;

use crate::rat::BigRat;
use clk_lp::{Certified, FarkasRay, Problem, RowKind, Solution, VarId, VarStatus, REDUNDANT_ROW};

/// Tuning for the checker's exact tolerance bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Exponent of the base tolerance `ε = 2^eps_exp`. The default,
    /// `−17` (`ε ≈ 7.6e-6`), sits above the solver's `1e-7` pivot
    /// tolerance and its `1e-6` phase-1 feasibility acceptance, so an
    /// honest float solve passes while data-scale corruption does not.
    pub eps_exp: i64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { eps_exp: -17 }
    }
}

/// One failed certificate check.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A value that must be finite (or a non-NaN bound) was not.
    NonFinite {
        /// What was non-finite, e.g. `"dual y[3]"`.
        what: String,
    },
    /// The certificate's dimensions or basis bookkeeping are inconsistent
    /// with the problem.
    Shape {
        /// Description of the inconsistency.
        what: String,
    },
    /// An internal variable's value violates its bounds.
    PrimalBound {
        /// Internal variable index (`>= n` means the slack of row
        /// `var − n`).
        var: usize,
        /// Approximate magnitude of the violation.
        resid: f64,
    },
    /// A nonbasic variable is not at the bound its status claims.
    NonbasicOffBound {
        /// Internal variable index.
        var: usize,
        /// Approximate distance from the claimed bound.
        resid: f64,
    },
    /// An exact reduced cost has the wrong sign for the variable's status.
    DualInfeasible {
        /// Internal variable index.
        var: usize,
        /// Approximate magnitude of the sign violation.
        resid: f64,
    },
    /// The recorded reduced cost disagrees with `c_j − yᵀA_j`.
    ReducedCostMismatch {
        /// Internal variable index.
        var: usize,
        /// Approximate magnitude of the disagreement.
        resid: f64,
    },
    /// The recorded objective disagrees with the exact `cᵀx`.
    ObjectiveMismatch {
        /// Approximate magnitude of the disagreement.
        resid: f64,
    },
    /// Strong duality fails: `cᵀx` and the dual objective
    /// `yᵀb + Σ d_j·bound_j` disagree beyond the tolerance band.
    DualityGap {
        /// Approximate magnitude of the gap.
        resid: f64,
    },
    /// A Farkas ray puts nonzero weight on a direction with an unbounded
    /// cap, so the ray proves nothing.
    FarkasLeak {
        /// Internal variable index with the unbounded contribution.
        var: usize,
        /// Approximate magnitude of the leaked weight.
        resid: f64,
    },
    /// The Farkas gap `yᵀb − Σ cap_j` is not strictly positive.
    FarkasGapNonPositive {
        /// Approximate value of the (non-positive) gap.
        gap: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NonFinite { what } => write!(f, "non-finite {what}"),
            Violation::Shape { what } => write!(f, "shape: {what}"),
            Violation::PrimalBound { var, resid } => {
                write!(
                    f,
                    "primal bound violated at internal var {var} by ~{resid:e}"
                )
            }
            Violation::NonbasicOffBound { var, resid } => {
                write!(f, "nonbasic var {var} is ~{resid:e} off its claimed bound")
            }
            Violation::DualInfeasible { var, resid } => {
                write!(
                    f,
                    "reduced cost of var {var} has the wrong sign by ~{resid:e}"
                )
            }
            Violation::ReducedCostMismatch { var, resid } => {
                write!(f, "recorded reduced cost of var {var} off by ~{resid:e}")
            }
            Violation::ObjectiveMismatch { resid } => {
                write!(f, "recorded objective off from exact cᵀx by ~{resid:e}")
            }
            Violation::DualityGap { resid } => {
                write!(f, "strong duality violated by ~{resid:e}")
            }
            Violation::FarkasLeak { var, resid } => {
                write!(
                    f,
                    "Farkas ray leaks ~{resid:e} weight into unbounded var {var}"
                )
            }
            Violation::FarkasGapNonPositive { gap } => {
                write!(f, "Farkas gap is not positive: ~{gap:e}")
            }
        }
    }
}

/// Outcome of one certificate verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Number of individual exact comparisons performed.
    pub checks: usize,
    /// Largest residual observed across the agreement checks
    /// (approximate `f64`, telemetry only — acceptance is exact).
    pub max_resid: f64,
    /// Every check that failed; empty means the certificate verifies.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the certificate verified with no violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies an optimality certificate against its problem with the
/// default tolerance. See [`check_with`].
pub fn check(p: &Problem, sol: &Solution) -> Report {
    check_with(p, sol, &CheckConfig::default())
}

/// Verifies an infeasibility witness against its problem with the default
/// tolerance. See [`check_infeasible_with`].
pub fn check_infeasible(p: &Problem, ray: &FarkasRay) -> Report {
    check_infeasible_with(p, ray, &CheckConfig::default())
}

/// Dispatches to [`check`] or [`check_infeasible`] on a solve outcome.
pub fn check_certified(p: &Problem, outcome: &Certified) -> Report {
    match outcome {
        Certified::Optimal(sol) => check(p, sol),
        Certified::Infeasible { ray } => check_infeasible(p, ray),
    }
}

// ---- internal exact view ------------------------------------------------

/// Lower/upper bound of an internal variable; `None` is the infinite side.
type Bound = Option<BigRat>;

struct Exact {
    n: usize,
    m: usize,
    /// bounds and cost of all `n + m` internal variables (slack cost 0)
    lo: Vec<Bound>,
    hi: Vec<Bound>,
    cost: Vec<BigRat>,
    /// sparse column of each internal variable (slack `n+i` is `[(i, 1)]`)
    cols: Vec<Vec<(usize, BigRat)>>,
    rhs: Vec<BigRat>,
}

struct Ctx {
    eps: BigRat,
    checks: usize,
    max_resid: BigRat,
    violations: Vec<Violation>,
}

impl Ctx {
    fn new(cfg: &CheckConfig) -> Self {
        Ctx {
            eps: BigRat::two_pow(cfg.eps_exp),
            checks: 0,
            max_resid: BigRat::zero(),
            violations: Vec::new(),
        }
    }

    /// `ε · (1 + mag)` — the exact tolerance band for a residual whose
    /// contributing terms have absolute mass `mag`.
    fn band(&self, mag: &BigRat) -> BigRat {
        self.eps.mul(&BigRat::one().add(mag))
    }

    /// Records an agreement check of residual `r` against `band`;
    /// pushes `make()` on failure.
    fn expect_zero(&mut self, r: &BigRat, band: &BigRat, make: impl FnOnce(f64) -> Violation) {
        self.checks += 1;
        let a = r.abs();
        if a.cmp_exact(&self.max_resid) == Ordering::Greater {
            self.max_resid = a.clone();
        }
        if a.cmp_exact(band) == Ordering::Greater {
            self.violations.push(make(a.approx_f64()));
        }
    }

    /// Records a one-sided check that `r ≤ band`; pushes `make()` on
    /// failure (a positive overshoot of `r − band`).
    fn expect_le(&mut self, r: &BigRat, band: &BigRat, make: impl FnOnce(f64) -> Violation) {
        self.checks += 1;
        if r.cmp_exact(band) == Ordering::Greater {
            let over = r.sub(band);
            self.violations.push(make(over.approx_f64()));
        }
    }

    fn finish(self) -> Report {
        Report {
            checks: self.checks,
            max_resid: self.max_resid.approx_f64(),
            violations: self.violations,
        }
    }
}

/// Decodes a finite value or records a violation; `None` means "cannot
/// proceed with this value".
fn decode_finite(
    v: f64,
    what: impl FnOnce() -> String,
    out: &mut Vec<Violation>,
) -> Option<BigRat> {
    match BigRat::from_f64_exact(v) {
        Some(r) => Some(r),
        None => {
            out.push(Violation::NonFinite { what: what() });
            None
        }
    }
}

/// Decodes a bound: infinities are legal (open side), NaN is not.
fn decode_bound(
    v: f64,
    upper: bool,
    what: impl FnOnce() -> String,
    out: &mut Vec<Violation>,
) -> Option<Bound> {
    if v.is_nan() {
        out.push(Violation::NonFinite { what: what() });
        return None;
    }
    match BigRat::from_f64_exact(v) {
        Some(r) => Some(Some(r)),
        // an infinite bound on the matching side is the open interval;
        // an infinite bound on the wrong side can never be satisfied
        None if v.is_sign_positive() == upper => Some(None),
        None => {
            out.push(Violation::NonFinite { what: what() });
            None
        }
    }
}

/// Builds the exact internal view of `p` (structural + slack variables).
/// Shape-validates every sparse row index so later indexing is safe.
fn decode_problem(p: &Problem, out: &mut Vec<Violation>) -> Option<Exact> {
    let n = p.num_vars();
    let m = p.num_rows();
    let mut lo = Vec::with_capacity(n + m);
    let mut hi = Vec::with_capacity(n + m);
    let mut cost = Vec::with_capacity(n + m);
    let mut cols = Vec::with_capacity(n + m);
    let mut rhs = Vec::with_capacity(m);
    let before = out.len();
    for j in 0..n {
        let v = VarId(j);
        let (bl, bh) = match p.bounds(v) {
            Ok(b) => b,
            Err(e) => {
                out.push(Violation::Shape {
                    what: format!("{e}"),
                });
                return None;
            }
        };
        lo.push(decode_bound(bl, false, || format!("lower bound of var {j}"), out).unwrap_or(None));
        hi.push(decode_bound(bh, true, || format!("upper bound of var {j}"), out).unwrap_or(None));
        let cj = p.cost(v).unwrap_or(f64::NAN);
        cost.push(
            decode_finite(cj, || format!("cost of var {j}"), out).unwrap_or_else(BigRat::zero),
        );
        let mut col = Vec::new();
        match p.col(v) {
            Ok(terms) => {
                for &(r, a) in terms {
                    if r >= m {
                        out.push(Violation::Shape {
                            what: format!("column {j} references row {r} of {m}"),
                        });
                        return None;
                    }
                    let ar = decode_finite(a, || format!("coefficient a[{r},{j}]"), out)
                        .unwrap_or_else(BigRat::zero);
                    col.push((r, ar));
                }
            }
            Err(e) => {
                out.push(Violation::Shape {
                    what: format!("{e}"),
                });
                return None;
            }
        }
        cols.push(col);
    }
    for i in 0..m {
        let (kind, b) = match p.row(i) {
            Ok(r) => r,
            Err(e) => {
                out.push(Violation::Shape {
                    what: format!("{e}"),
                });
                return None;
            }
        };
        rhs.push(decode_finite(b, || format!("rhs of row {i}"), out).unwrap_or_else(BigRat::zero));
        let (sl, sh) = match kind {
            RowKind::Le => (Some(BigRat::zero()), None),
            RowKind::Ge => (None, Some(BigRat::zero())),
            RowKind::Eq => (Some(BigRat::zero()), Some(BigRat::zero())),
        };
        lo.push(sl);
        hi.push(sh);
        cost.push(BigRat::zero());
        cols.push(vec![(i, BigRat::one())]);
    }
    if out.len() > before {
        return None;
    }
    Some(Exact {
        n,
        m,
        lo,
        hi,
        cost,
        cols,
        rhs,
    })
}

// The functions below index into vectors whose lengths were validated by
// the shape pass (and built by `decode_problem` itself); a failed lookup
// here would be a checker bug, and the checker must not mask its own bugs
// with silent `get` fallbacks.
// shape is pre-validated (C1) and the C3/C4 passes walk several
// equal-length columns at once, so indexed range loops stay
#[allow(clippy::indexing_slicing, clippy::needless_range_loop)]
fn check_optimal(ex: &Exact, sol: &Solution, ctx: &mut Ctx) {
    let (n, m) = (ex.n, ex.m);
    let cert = &sol.certificate;

    // decode the certificate payload
    let mut viol = Vec::new();
    let x: Vec<BigRat> = sol
        .x
        .iter()
        .enumerate()
        .map(|(j, &v)| {
            decode_finite(v, || format!("x[{j}]"), &mut viol).unwrap_or_else(BigRat::zero)
        })
        .collect();
    let y: Vec<BigRat> = cert
        .y
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            decode_finite(v, || format!("dual y[{i}]"), &mut viol).unwrap_or_else(BigRat::zero)
        })
        .collect();
    let reduced: Vec<BigRat> = cert
        .reduced
        .iter()
        .enumerate()
        .map(|(j, &v)| {
            decode_finite(v, || format!("reduced cost d[{j}]"), &mut viol)
                .unwrap_or_else(BigRat::zero)
        })
        .collect();
    let objective = decode_finite(sol.objective, || "objective".to_owned(), &mut viol);
    ctx.violations.append(&mut viol);
    let Some(objective) = objective else {
        return;
    };
    if !ctx.violations.is_empty() {
        return;
    }

    // internal variable values: structural from the solution, slack from
    // the exact row activity so that Ax + s = b holds by construction;
    // each value carries the absolute mass that produced it
    let mut act: Vec<BigRat> = vec![BigRat::zero(); m];
    let mut act_mag: Vec<BigRat> = vec![BigRat::zero(); m];
    for (j, xj) in x.iter().enumerate() {
        for (r, a) in &ex.cols[j] {
            let t = a.mul(xj);
            act_mag[*r] = act_mag[*r].add(&t.abs());
            act[*r] = act[*r].add(&t);
        }
    }
    let mut val: Vec<BigRat> = Vec::with_capacity(n + m);
    let mut val_mag: Vec<BigRat> = Vec::with_capacity(n + m);
    for (j, xj) in x.iter().enumerate() {
        val.push(xj.clone());
        val_mag.push(x[j].abs());
    }
    for i in 0..m {
        val.push(ex.rhs[i].sub(&act[i]));
        val_mag.push(ex.rhs[i].abs().add(&act_mag[i]));
    }

    // C2a: every internal variable within its bounds
    for j in 0..n + m {
        let mag = val_mag[j].clone();
        if let Some(l) = &ex.lo[j] {
            let under = l.sub(&val[j]); // positive ⇒ below the lower bound
            let band = ctx.band(&mag.add(&l.abs()));
            ctx.expect_le(&under, &band, |resid| Violation::PrimalBound {
                var: j,
                resid,
            });
        }
        if let Some(h) = &ex.hi[j] {
            let over = val[j].sub(h);
            let band = ctx.band(&mag.add(&h.abs()));
            ctx.expect_le(&over, &band, |resid| Violation::PrimalBound {
                var: j,
                resid,
            });
        }
    }

    // C2b: nonbasic variables sit exactly at their claimed bound
    for j in 0..n + m {
        let claimed = match cert.status[j] {
            VarStatus::Basic => continue,
            VarStatus::AtLower => &ex.lo[j],
            VarStatus::AtUpper => &ex.hi[j],
            VarStatus::Free => {
                let band = ctx.band(&val_mag[j]);
                ctx.expect_zero(&val[j], &band, |resid| Violation::NonbasicOffBound {
                    var: j,
                    resid,
                });
                continue;
            }
        };
        let Some(b) = claimed else {
            ctx.violations.push(Violation::Shape {
                what: format!("var {j} claims an infinite bound as its resting point"),
            });
            continue;
        };
        let r = val[j].sub(b);
        let band = ctx.band(&val_mag[j].add(&b.abs()));
        ctx.expect_zero(&r, &band, |resid| Violation::NonbasicOffBound {
            var: j,
            resid,
        });
    }

    // C3: exact reduced costs — recorded agreement and dual feasibility
    for j in 0..n + m {
        let mut z = BigRat::zero();
        let mut zmag = ex.cost[j].abs();
        for (r, a) in &ex.cols[j] {
            let t = y[*r].mul(a);
            zmag = zmag.add(&t.abs());
            z = z.add(&t);
        }
        let d = ex.cost[j].sub(&z);
        let band = ctx.band(&zmag);
        let diff = d.sub(&reduced[j]);
        ctx.expect_zero(&diff, &band, |resid| Violation::ReducedCostMismatch {
            var: j,
            resid,
        });
        // fixed variables carry no sign constraint
        if let (Some(l), Some(h)) = (&ex.lo[j], &ex.hi[j]) {
            if l.cmp_exact(h) == Ordering::Equal {
                continue;
            }
        }
        match cert.status[j] {
            VarStatus::Basic | VarStatus::Free => {
                ctx.expect_zero(&d, &band, |resid| Violation::DualInfeasible {
                    var: j,
                    resid,
                });
            }
            VarStatus::AtLower => {
                // need d ≥ −band, i.e. −d ≤ band
                ctx.expect_le(&d.negate(), &band, |resid| Violation::DualInfeasible {
                    var: j,
                    resid,
                });
            }
            VarStatus::AtUpper => {
                ctx.expect_le(&d, &band, |resid| Violation::DualInfeasible {
                    var: j,
                    resid,
                });
            }
        }
    }

    // C4a: recorded objective agrees with exact cᵀx
    let mut obj = BigRat::zero();
    let mut obj_mag = BigRat::zero();
    for (j, xj) in x.iter().enumerate() {
        let t = ex.cost[j].mul(xj);
        obj_mag = obj_mag.add(&t.abs());
        obj = obj.add(&t);
    }
    let band = ctx.band(&obj_mag);
    let diff = obj.sub(&objective);
    ctx.expect_zero(&diff, &band, |resid| Violation::ObjectiveMismatch { resid });

    // C4b: strong duality — cᵀx equals yᵀb + Σ_{nonbasic j} d_j·bound_j,
    // with the recorded reduced costs standing in for d_j (their agreement
    // with y was established in C3)
    let mut dual = BigRat::zero();
    let mut dual_mag = BigRat::zero();
    for (i, yi) in y.iter().enumerate() {
        let t = yi.mul(&ex.rhs[i]);
        dual_mag = dual_mag.add(&t.abs());
        dual = dual.add(&t);
    }
    for j in 0..n + m {
        let bval = match cert.status[j] {
            VarStatus::Basic | VarStatus::Free => continue,
            VarStatus::AtLower => &ex.lo[j],
            VarStatus::AtUpper => &ex.hi[j],
        };
        let Some(b) = bval else {
            continue; // already reported as Shape in C2b
        };
        if b.is_zero() {
            continue;
        }
        let t = reduced[j].mul(b);
        dual_mag = dual_mag.add(&t.abs());
        dual = dual.add(&t);
    }
    let band = ctx.band(&obj_mag.add(&dual_mag));
    let gap = obj.sub(&dual);
    ctx.expect_zero(&gap, &band, |resid| Violation::DualityGap { resid });
}

/// Verifies an optimality certificate against its problem: primal
/// feasibility, claimed nonbasic resting points, dual feasibility,
/// recorded-vs-exact reduced costs, objective agreement, and strong
/// duality — all in exact arithmetic over bands of `2^eps_exp` scaled by
/// the exactly-accumulated term magnitudes.
pub fn check_with(p: &Problem, sol: &Solution, cfg: &CheckConfig) -> Report {
    let mut ctx = Ctx::new(cfg);
    let n = p.num_vars();
    let m = p.num_rows();
    let cert = &sol.certificate;

    // C1: dimensions and basis bookkeeping must line up before any index
    // below can be trusted
    let dims = [
        (sol.x.len(), n, "x"),
        (cert.status.len(), n + m, "status"),
        (cert.reduced.len(), n + m, "reduced"),
        (cert.y.len(), m, "y"),
        (cert.basis.len(), m, "basis"),
    ];
    for (got, want, what) in dims {
        ctx.checks += 1;
        if got != want {
            ctx.violations.push(Violation::Shape {
                what: format!("{what} has length {got}, expected {want}"),
            });
        }
    }
    if !ctx.violations.is_empty() {
        return ctx.finish();
    }
    let mut seen = vec![false; n + m];
    let mut basic_rows = 0usize;
    for (i, &b) in cert.basis.iter().enumerate() {
        ctx.checks += 1;
        if b == REDUNDANT_ROW {
            continue;
        }
        let Some(was) = seen.get_mut(b) else {
            ctx.violations.push(Violation::Shape {
                what: format!("basis of row {i} references internal var {b} of {}", n + m),
            });
            continue;
        };
        if *was {
            ctx.violations.push(Violation::Shape {
                what: format!("internal var {b} is basic in more than one row"),
            });
        }
        *was = true;
        basic_rows += 1;
        if cert.status.get(b).copied() != Some(VarStatus::Basic) {
            ctx.violations.push(Violation::Shape {
                what: format!("basis of row {i} names var {b}, whose status is not Basic"),
            });
        }
    }
    let basic_statuses = cert
        .status
        .iter()
        .filter(|s| matches!(s, VarStatus::Basic))
        .count();
    ctx.checks += 1;
    if basic_statuses != basic_rows {
        ctx.violations.push(Violation::Shape {
            what: format!("{basic_statuses} Basic statuses for {basic_rows} basis rows"),
        });
    }
    if !ctx.violations.is_empty() {
        return ctx.finish();
    }

    // C0: decode everything exactly (records NonFinite on failure)
    let Some(ex) = decode_problem(p, &mut ctx.violations) else {
        return ctx.finish();
    };
    check_optimal(&ex, sol, &mut ctx);
    ctx.finish()
}

/// Verifies a Farkas-style infeasibility witness: with `z_j = yᵀA_j`
/// over the internal variables, every `z_j` must point at a finite bound
/// (or carry only tolerance-level weight, which the check conservatively
/// drops — widening, never shrinking, the claimed gap), and the exact
/// gap `yᵀb − Σ_j max(z_j·lo_j, z_j·hi_j)` must be strictly positive.
pub fn check_infeasible_with(p: &Problem, ray: &FarkasRay, cfg: &CheckConfig) -> Report {
    let mut ctx = Ctx::new(cfg);
    let m = p.num_rows();
    ctx.checks += 1;
    if ray.y.len() != m {
        ctx.violations.push(Violation::Shape {
            what: format!("ray has length {}, expected {m}", ray.y.len()),
        });
        return ctx.finish();
    }
    let mut viol = Vec::new();
    let y: Vec<BigRat> = ray
        .y
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            decode_finite(v, || format!("ray y[{i}]"), &mut viol).unwrap_or_else(BigRat::zero)
        })
        .collect();
    ctx.violations.append(&mut viol);
    let Some(ex) = decode_problem(p, &mut ctx.violations) else {
        return ctx.finish();
    };
    if !ctx.violations.is_empty() {
        return ctx.finish();
    }
    farkas_gap(&ex, &y, &mut ctx);
    ctx.finish()
}

#[allow(clippy::indexing_slicing)] // lengths validated by the callers
fn farkas_gap(ex: &Exact, y: &[BigRat], ctx: &mut Ctx) {
    let (n, m) = (ex.n, ex.m);
    let mut cap_sum = BigRat::zero();
    for j in 0..n + m {
        let mut z = BigRat::zero();
        let mut zmag = BigRat::zero();
        for (r, a) in &ex.cols[j] {
            let t = y[*r].mul(a);
            zmag = zmag.add(&t.abs());
            z = z.add(&t);
        }
        if z.is_zero() {
            continue;
        }
        let bound = if z.is_positive() {
            &ex.hi[j]
        } else {
            &ex.lo[j]
        };
        match bound {
            Some(b) => {
                cap_sum = cap_sum.add(&z.mul(b));
            }
            None => {
                // unbounded direction: only tolerance-level weight may be
                // dropped (dropping raises the cap bound toward +∞ — er,
                // removes a −∞ cap — so it only *hurts* the gap claim
                // when the weight is genuinely nonzero)
                let band = ctx.band(&zmag);
                ctx.expect_zero(&z, &band, |resid| Violation::FarkasLeak { var: j, resid });
            }
        }
    }
    let mut ytb = BigRat::zero();
    for (i, yi) in y.iter().enumerate() {
        ytb = ytb.add(&yi.mul(&ex.rhs[i]));
    }
    let gap = ytb.sub(&cap_sum);
    ctx.checks += 1;
    if !gap.is_positive() {
        ctx.violations.push(Violation::FarkasGapNonPositive {
            gap: gap.approx_f64(),
        });
    }
}

#[cfg(test)]
// tests build poisoned floats on purpose
#[allow(clippy::float_arithmetic, clippy::float_cmp)]
mod tests {
    use super::*;
    use clk_lp::{solve_certified, Certified, Problem, RowKind};

    fn solved(p: &Problem) -> Solution {
        match solve_certified(p).unwrap() {
            Certified::Optimal(s) => s,
            Certified::Infeasible { .. } => panic!("unexpected infeasible"),
        }
    }

    fn infeasible_ray(p: &Problem) -> FarkasRay {
        match solve_certified(p).unwrap() {
            Certified::Optimal(_) => panic!("unexpected optimum"),
            Certified::Infeasible { ray } => ray,
        }
    }

    #[test]
    fn textbook_certificate_verifies() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, -3.0).unwrap();
        let y = p.add_var(0.0, f64::INFINITY, -5.0).unwrap();
        p.add_row(RowKind::Le, 4.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Le, 12.0, &[(y, 2.0)]).unwrap();
        p.add_row(RowKind::Le, 18.0, &[(x, 3.0), (y, 2.0)]).unwrap();
        let s = solved(&p);
        let r = check(&p, &s);
        assert!(r.ok(), "{:?}", r.violations);
        assert!(r.checks > 10);
        assert!(r.max_resid < 1e-9, "max_resid {}", r.max_resid);
    }

    #[test]
    fn equality_and_bound_mix_verifies() {
        let mut p = Problem::new();
        let x = p.add_var(-5.0, 5.0, 1.0).unwrap();
        let y = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0).unwrap();
        p.add_row(RowKind::Eq, -2.0, &[(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowKind::Ge, -3.0, &[(y, 1.0)]).unwrap();
        let s = solved(&p);
        let r = check(&p, &s);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn honest_farkas_ray_verifies() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowKind::Ge, 5.0, &[(x, 1.0)]).unwrap();
        let ray = infeasible_ray(&p);
        let r = check_infeasible(&p, &ray);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn contradictory_equalities_ray_verifies() {
        let mut p = Problem::new();
        let x = p.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0).unwrap();
        p.add_row(RowKind::Eq, 1.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Eq, 2.0, &[(x, 1.0)]).unwrap();
        let ray = infeasible_ray(&p);
        let r = check_infeasible(&p, &ray);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn perturbed_dual_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, -3.0).unwrap();
        let y = p.add_var(0.0, f64::INFINITY, -5.0).unwrap();
        p.add_row(RowKind::Le, 4.0, &[(x, 1.0)]).unwrap();
        p.add_row(RowKind::Le, 12.0, &[(y, 2.0)]).unwrap();
        p.add_row(RowKind::Le, 18.0, &[(x, 3.0), (y, 2.0)]).unwrap();
        let mut s = solved(&p);
        s.certificate.y[1] += 1e-3;
        let r = check(&p, &s);
        assert!(!r.ok(), "perturbed dual must not verify");
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReducedCostMismatch { .. })));
    }

    #[test]
    fn dropped_basis_column_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.0, -1.0).unwrap();
        p.add_row(RowKind::Le, 2.0, &[(x, 1.0)]).unwrap();
        let mut s = solved(&p);
        s.certificate.basis.pop();
        let r = check(&p, &s);
        assert!(!r.ok());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Shape { .. })));
    }

    #[test]
    fn flipped_farkas_sign_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowKind::Ge, 5.0, &[(x, 1.0)]).unwrap();
        let mut ray = infeasible_ray(&p);
        for v in &mut ray.y {
            *v = -*v;
        }
        let r = check_infeasible(&p, &ray);
        assert!(!r.ok(), "flipped ray must not verify");
    }

    #[test]
    fn zero_ray_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowKind::Ge, 5.0, &[(x, 1.0)]).unwrap();
        let ray = FarkasRay { y: vec![0.0] };
        let r = check_infeasible(&p, &ray);
        assert!(!r.ok());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FarkasGapNonPositive { .. })));
    }

    #[test]
    fn corrupted_solution_value_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.0, -1.0).unwrap();
        p.add_row(RowKind::Le, 2.0, &[(x, 1.0)]).unwrap();
        let mut s = solved(&p);
        s.x[0] = 2.5; // beyond the binding row
        let r = check(&p, &s);
        assert!(!r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn nan_poisoned_problem_is_rejected() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 3.0, -1.0).unwrap();
        p.add_row(RowKind::Le, 2.0, &[(x, 1.0)]).unwrap();
        let s = solved(&p);
        p.debug_poison_rhs(0, f64::NAN);
        let r = check(&p, &s);
        assert!(!r.ok());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonFinite { .. })));
        let _ = x;
    }

    #[test]
    fn shifted_rhs_after_solve_is_rejected() {
        // certificate/problem disagreement: solve honest, then move b
        let mut p = Problem::new();
        let x = p.add_var(0.0, f64::INFINITY, -1.0).unwrap();
        p.add_row(RowKind::Le, 2.0, &[(x, 1.0)]).unwrap();
        let s = solved(&p);
        p.debug_poison_rhs(0, 1.0);
        let r = check(&p, &s);
        assert!(!r.ok(), "stale certificate must not verify");
    }
}
