//! Property and concurrency tests for the `clk-obs` primitives:
//! histogram quantiles against a sorted-vec oracle, counter updates
//! from racing threads, and JSONL sink round-trip parsing.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic, clippy::float_cmp)]

use clk_obs::{json, kv, Level, Obs, ObsConfig, SharedBuf, Value};
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sample set — the oracle the
/// log-linear histogram is checked against.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn histogram_quantiles_track_oracle(
        samples in prop::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = oracle_quantile(&sorted, q);
        let est = snap.quantile(q);
        // log-linear buckets are ~9% wide; allow 15% relative slack
        prop_assert!(
            (est - exact).abs() <= exact.abs() * 0.15 + 1e-9,
            "q={} est={} exact={}", q, est, exact
        );

        let exact_sum: f64 = samples.iter().sum();
        prop_assert!((snap.sum - exact_sum).abs() <= exact_sum.abs() * 1e-9 + 1e-9);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, sorted[sorted.len() - 1]);
    }

    fn histogram_handles_zero_and_negative(
        samples in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let h = clk_obs::Histogram::default();
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        // quantiles stay inside the observed range
        for &q in &[0.0, 0.5, 1.0] {
            let est = snap.quantile(q);
            prop_assert!(est >= snap.min - 1e-12 && est <= snap.max + 1e-12);
        }
    }

    fn jsonl_round_trips_arbitrary_fields(
        n in 0u64..1_000_000,
        x in -1e9f64..1e9,
        s in prop::collection::vec(0u8..128, 0..32),
    ) {
        let text: String = s.into_iter().map(|b| b as char).collect();
        let obs = Obs::new(ObsConfig { verbosity: Level::Trace, ..ObsConfig::default() });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        obs.event(
            Level::Debug,
            "prop.event",
            vec![kv("n", n), kv("x", x), kv("s", text.as_str())],
        );
        obs.flush();
        let line = buf.contents();
        let v = json::parse(line.trim()).expect("emitted line parses");
        let fields = v.get("fields").expect("fields present");
        prop_assert_eq!(fields.get("n").and_then(Value::as_u64), Some(n));
        let got_x = fields.get("x").and_then(Value::as_f64).expect("x");
        prop_assert!((got_x - x).abs() <= x.abs() * 1e-12 + 1e-12);
        prop_assert_eq!(fields.get("s").and_then(Value::as_str), Some(text.as_str()));
    }
}

#[test]
fn counters_survive_racing_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let obs = Obs::new(ObsConfig::default());
    let counter = obs.counter("race.hits").expect("enabled");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = std::sync::Arc::clone(&counter);
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // exercise the by-name path concurrently too
                    if i % 100 == 0 {
                        obs.count("race.named", 1);
                    }
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let snap = obs.metrics_snapshot().expect("enabled");
    match snap.get("race.named") {
        Some(clk_obs::MetricValue::Counter(n)) => {
            assert_eq!(*n, (THREADS as u64) * (PER_THREAD / 100));
        }
        other => panic!("expected counter, got {other:?}"),
    }
}

#[test]
fn histogram_observe_is_thread_safe() {
    let obs = Obs::new(ObsConfig::default());
    let hist = obs.histogram("race.ms").expect("enabled");
    std::thread::scope(|scope| {
        for t in 0..4 {
            let hist = std::sync::Arc::clone(&hist);
            scope.spawn(move || {
                for i in 1..=1000u32 {
                    hist.observe(f64::from(i + t * 1000));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 4000);
    assert_eq!(snap.min, 1.0);
    assert_eq!(snap.max, 4000.0);
}

#[test]
fn jsonl_stream_of_full_run_parses_line_by_line() {
    let obs = Obs::new(ObsConfig {
        verbosity: Level::Trace,
        ..ObsConfig::default()
    });
    let buf = SharedBuf::new();
    obs.add_jsonl_buffer(&buf);
    {
        let mut flow = obs.span("flow");
        for round in 0..3u64 {
            let mut span = obs.span_at(Level::Debug, "global.round", vec![kv("round", round)]);
            span.record("lp_iters", round * 7);
        }
        obs.fault("timer_timeout", 0, vec![kv("phase", "local")]);
        flow.record("rounds", 3u64);
    }
    obs.emit_metrics();
    obs.flush();
    let contents = buf.contents();
    let mut kinds = std::collections::BTreeMap::new();
    for line in contents.lines() {
        let v = json::parse(line).expect("line parses");
        let t = v
            .get("t")
            .and_then(Value::as_str)
            .expect("t present")
            .to_string();
        *kinds.entry(t).or_insert(0u32) += 1;
    }
    assert_eq!(kinds.get("span_start"), Some(&4));
    assert_eq!(kinds.get("span_end"), Some(&4));
    assert_eq!(kinds.get("fault"), Some(&1));
    assert_eq!(kinds.get("flight_dump"), Some(&1));
    assert_eq!(kinds.get("metrics"), Some(&1));
}
