//! Property tests of the certificate checker: every certificate the
//! solver emits on a random small LP must verify, and mutated
//! certificates (perturbed dual, dropped basis column, flipped Farkas
//! ray) must always be rejected.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cert::{check, check_infeasible, Violation};
use clk_lp::{solve_certified, Certified, FarkasRay, Problem, RowKind, Solution};
use proptest::prelude::*;

/// Builds a box-bounded LP from generated data; always well-formed, may
/// be feasible or infeasible depending on the rows.
fn build_lp(vars: &[(f64, f64, f64)], rows: &[(u8, f64, Vec<f64>)]) -> Problem {
    let mut p = Problem::new();
    let ids: Vec<_> = vars
        .iter()
        .map(|&(lo, w, c)| p.add_var(lo, lo + w, c).expect("finite bounds"))
        .collect();
    for (kind, rhs, coefs) in rows {
        let kind = match kind {
            0 => RowKind::Le,
            1 => RowKind::Ge,
            _ => RowKind::Eq,
        };
        let terms: Vec<_> = ids
            .iter()
            .zip(coefs)
            .filter(|&(_, &a)| a.abs() > 0.05)
            .map(|(&v, &a)| (v, a))
            .collect();
        p.add_row(kind, *rhs, &terms).expect("finite row");
    }
    p
}

/// Solves and splits the outcome; `None` when the solver hit its pivot
/// budget (no certificate is emitted in that case).
fn certified(p: &Problem) -> Option<Result<Solution, FarkasRay>> {
    match solve_certified(p) {
        Ok(Certified::Optimal(s)) => Some(Ok(s)),
        Ok(Certified::Infeasible { ray }) => Some(Err(ray)),
        Err(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accept path: whatever the solver claims on a random small LP —
    /// optimum or infeasibility — the exact checker agrees.
    #[test]
    fn random_small_lps_always_certify(
        vars in prop::collection::vec((-5.0f64..5.0, 0.1f64..10.0, -5.0f64..5.0), 1..8),
        rows in prop::collection::vec(
            (0u8..3, -10.0f64..10.0, prop::collection::vec(-3.0f64..3.0, 8)),
            0..8),
    ) {
        let p = build_lp(&vars, &rows);
        match certified(&p) {
            Some(Ok(s)) => {
                let r = check(&p, &s);
                prop_assert!(r.ok(), "honest optimum rejected: {:?}", r.violations);
            }
            Some(Err(ray)) => {
                let r = check_infeasible(&p, &ray);
                prop_assert!(r.ok(), "honest Farkas ray rejected: {:?}", r.violations);
            }
            None => {} // pivot budget exhausted: nothing to certify
        }
    }

    /// Reject path 1: perturbing one dual value beyond the tolerance band
    /// always surfaces as a reduced-cost mismatch (the slack column of
    /// the perturbed row ties `y_i` to its recorded reduced cost).
    #[test]
    fn perturbed_dual_always_rejected(
        vars in prop::collection::vec((-5.0f64..5.0, 0.1f64..10.0, -5.0f64..5.0), 1..8),
        rows in prop::collection::vec(
            (0u8..2, -10.0f64..10.0, prop::collection::vec(-3.0f64..3.0, 8)),
            1..8),
        pick in 0usize..64,
        frac in 0.01f64..1.0,
        flip in 0u8..2,
    ) {
        let p = build_lp(&vars, &rows);
        let Some(Ok(mut s)) = certified(&p) else { return Ok(()); };
        let i = pick % s.certificate.y.len();
        // scale the nudge with the dual so it always clears the
        // magnitude-scaled tolerance band
        let delta = (1.0 + s.certificate.y[i].abs()) * frac;
        s.certificate.y[i] += if flip == 1 { -delta } else { delta };
        let r = check(&p, &s);
        prop_assert!(!r.ok(), "perturbed dual y[{i}] still verified");
        prop_assert!(
            r.violations.iter().any(|v| matches!(
                v,
                Violation::ReducedCostMismatch { .. } | Violation::DualInfeasible { .. }
            )),
            "unexpected violation mix: {:?}", r.violations
        );
    }

    /// Reject path 2: dropping a basis column is a shape violation, never
    /// a silent pass.
    #[test]
    fn dropped_basis_column_always_rejected(
        vars in prop::collection::vec((-5.0f64..5.0, 0.1f64..10.0, -5.0f64..5.0), 1..8),
        rows in prop::collection::vec(
            (0u8..2, -10.0f64..10.0, prop::collection::vec(-3.0f64..3.0, 8)),
            1..8),
    ) {
        let p = build_lp(&vars, &rows);
        let Some(Ok(mut s)) = certified(&p) else { return Ok(()); };
        s.certificate.basis.pop();
        let r = check(&p, &s);
        prop_assert!(!r.ok(), "truncated basis still verified");
        prop_assert!(
            r.violations.iter().any(|v| matches!(v, Violation::Shape { .. })),
            "expected a shape violation, got {:?}", r.violations
        );
    }

    /// Reject path 3: negating an honest Farkas ray makes its gap
    /// non-positive (or leaks weight into an unbounded direction); it
    /// must never verify.
    #[test]
    fn flipped_farkas_sign_always_rejected(
        lo in -5.0f64..5.0,
        width in 0.1f64..10.0,
        gap in 0.5f64..10.0,
        coef in 0.2f64..3.0,
    ) {
        // x ∈ [lo, lo+width] with coef·x ≥ coef·(lo+width) + gap is
        // infeasible by construction
        let mut p = Problem::new();
        let x = p.add_var(lo, lo + width, 1.0).expect("finite");
        p.add_row(RowKind::Ge, coef * (lo + width) + gap, &[(x, coef)])
            .expect("finite");
        let Some(Err(mut ray)) = certified(&p) else {
            return Err(TestCaseError::fail("expected infeasibility"));
        };
        prop_assert!(check_infeasible(&p, &ray).ok(), "honest ray rejected");
        for v in &mut ray.y {
            *v = -*v;
        }
        let r = check_infeasible(&p, &ray);
        prop_assert!(!r.ok(), "sign-flipped ray still verified");
    }
}
