#![warn(missing_docs)]

//! Rectilinear routing substrate: two-pin paths with controllable detours,
//! wire trees, single-trunk Steiner trees and a FLUTE-class rectilinear
//! Steiner minimal tree heuristic.
//!
//! The DAC'15 flow needs routing in three places:
//!
//! 1. the **ECO router** realizes LP-guided buffer chains along arcs,
//!    including "U"-shaped detours when the LP asks for extra wire delay
//!    (paper §4.1);
//! 2. the **delta-latency predictor** estimates the routing pattern of a
//!    perturbed net with two topologies — a FLUTE tree and a single-trunk
//!    Steiner tree (paper §4.2);
//! 3. the baseline **CTS** routes parent→child connections.
//!
//! The original FLUTE \[Chu, ICCAD'04\] uses pre-computed potentially-optimal
//! wirelength-vector tables; those tables are proprietary-free but huge, so
//! [`rsmt`] substitutes an **iterated 1-Steiner** heuristic (exact for ≤ 3
//! pins, near-optimal for the ≤ 40-pin nets that occur in clock trees).
//! DESIGN.md documents this substitution.
//!
//! # Examples
//!
//! ```
//! use clk_geom::Point;
//! use clk_route::RoutePath;
//!
//! let p = RoutePath::l_shape(Point::new(0, 0), Point::new(5_000, 2_000));
//! assert_eq!(p.length_dbu(), 7_000);
//! let q = RoutePath::with_detour(Point::new(0, 0), Point::new(5_000, 2_000), 10.0);
//! assert_eq!(q.length_dbu(), 17_000);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod path;
pub mod steiner;
pub mod tree;

pub use path::RoutePath;
pub use steiner::{rsmt, single_trunk};
pub use tree::WireTree;
