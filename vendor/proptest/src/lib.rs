//! Offline API-compatible subset of the `proptest` crate.
//!
//! See README.md: this shim exists so the workspace builds without
//! registry access. It implements deterministic case generation with
//! the upstream macro surface but performs no shrinking.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![allow(clippy::cast_lossless)] // macro impls cover usize/isize, where `From` does not exist

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (filtered input).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Result type every generated case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator for case inputs (xoshiro256++ over a
/// SplitMix64-expanded seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for attempt `attempt` of the test identified by `base`.
    pub fn new(base: u64, attempt: u64) -> Self {
        let mut sm = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (u128::from(self.next_u64())) % span
    }
}

/// FNV-1a hash of a test identifier, used as the deterministic seed base.
#[doc(hidden)]
pub fn __seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{fmt, Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        #[allow(
            clippy::redundant_closure_call,
            clippy::unused_unit,
            unused_braces,
            unused_variables
        )]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __base = $crate::__seed(concat!(module_path!(), "::", stringify!($name)));
            let mut __done: u32 = 0;
            let mut __attempt: u64 = 0;
            while __done < __cfg.cases {
                assert!(
                    __attempt <= u64::from(__cfg.cases) * 20 + 100,
                    "proptest '{}': too many rejected cases",
                    stringify!($name),
                );
                let mut __rng = $crate::TestRng::new(__base, __attempt);
                __attempt += 1;
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&::std::format!("{:?}; ", $arg));
                )+
                let __outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name),
                            __done,
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b,
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Rejects the current case unless the condition holds, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_in_bounds(x in -10i64..10, y in 0.0f64..1.0, n in 1usize..5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        fn vec_lengths(v in prop::collection::vec(0u8..255, 2..7), w in prop::collection::vec(0i64..4, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert_eq!(w.len(), 3);
        }

        fn map_applies(p in (0i64..100, 0i64..100).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..200).contains(&p));
            prop_assume!(p != i64::MAX);
        }
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(crate::__seed("x"), crate::__seed("x"));
        assert_ne!(crate::__seed("x"), crate::__seed("y"));
    }
}
