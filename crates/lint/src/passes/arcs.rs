//! `A0xx` — arc-view consistency: the junction-to-junction arc
//! decomposition must cover the tree's edges exactly, chains must be
//! uniform inverter runs with in-library cells, and every sink must see
//! the same inversion parity.

use std::collections::HashMap;

use clk_netlist::{ArcSet, ClockTree, NodeId, NodeKind};

use crate::context::DesignCtx;
use crate::diag::{Diagnostic, Locus};
use crate::runner::LintPass;

/// `A001` — audits that the arc set is a exact edge cover of the tree:
/// every consecutive pair along every arc is a real parent→child edge,
/// and every tree edge is covered by exactly one arc.
///
/// Public so tests can audit a *stale* arc set against an edited tree
/// (the staleness bug class the ECO engine guards against).
pub fn audit_arc_cover(tree: &ClockTree, arcs: &ArcSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut covered: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for (i, arc) in arcs.arcs().iter().enumerate() {
        let locus = Locus::Arc(clk_netlist::ArcId(i as u32));
        let mut chain = Vec::with_capacity(arc.interior.len() + 2);
        chain.push(arc.from);
        chain.extend_from_slice(&arc.interior);
        chain.push(arc.to);
        for w in chain.windows(2) {
            let (p, c) = (w[0], w[1]);
            if !tree.is_alive(c) || !tree.is_alive(p) || tree.parent(c) != Some(p) {
                out.push(Diagnostic::error(
                    "A001",
                    locus,
                    format!("arc step {p} -> {c} is not a live tree edge"),
                ));
                continue;
            }
            *covered.entry((p, c)).or_insert(0) += 1;
        }
    }
    for c in tree.node_ids() {
        let Some(p) = tree.parent(c) else { continue };
        match covered.get(&(p, c)).copied().unwrap_or(0) {
            1 => {}
            0 => out.push(Diagnostic::error(
                "A001",
                Locus::Node(c),
                format!("tree edge {p} -> {c} is covered by no arc"),
            )),
            n => out.push(Diagnostic::error(
                "A001",
                Locus::Node(c),
                format!("tree edge {p} -> {c} is covered by {n} arcs"),
            )),
        }
    }
    out
}

/// The arc-cover audit pass (`A001`), extracting a fresh arc view.
pub struct ArcCoverPass;

impl LintPass for ArcCoverPass {
    fn name(&self) -> &'static str {
        "arc-cover"
    }

    fn description(&self) -> &'static str {
        "the junction-to-junction arc view covers every tree edge exactly once"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        if !ctx.structurally_sound() {
            return;
        }
        let arcs = ArcSet::extract(ctx.tree);
        out.extend(audit_arc_cover(ctx.tree, &arcs));
    }
}

/// The chain-uniformity audit pass: `A002` (warning) mixed repeater
/// cells inside one arc, `A003` out-of-library cell ids, `A004`
/// (warning) irregular repeater spacing along an arc.
pub struct ArcChainPass;

impl LintPass for ArcChainPass {
    fn name(&self) -> &'static str {
        "arc-chain"
    }

    fn description(&self) -> &'static str {
        "arcs are uniform inverter chains with in-library cells and near-uniform spacing"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        let n_cells = ctx.lib.cells().len();
        for id in ctx.tree.node_ids() {
            if let NodeKind::Buffer(c) = ctx.tree.node(id).kind {
                if c.0 >= n_cells {
                    out.push(Diagnostic::error(
                        "A003",
                        Locus::Node(id),
                        format!("cell id {} outside library ({} cells)", c.0, n_cells),
                    ));
                }
            }
        }
        if ctx.tree.source_cell().0 >= n_cells {
            out.push(Diagnostic::error(
                "A003",
                Locus::Node(ctx.tree.root()),
                format!(
                    "source cell id {} outside library ({} cells)",
                    ctx.tree.source_cell().0,
                    n_cells
                ),
            ));
        }
        if !ctx.structurally_sound() {
            return;
        }
        let arcs = ArcSet::extract(ctx.tree);
        for (i, arc) in arcs.arcs().iter().enumerate() {
            let locus = Locus::Arc(clk_netlist::ArcId(i as u32));
            let mut cells: Vec<usize> = arc
                .interior
                .iter()
                .filter_map(|&n| match ctx.tree.node(n).kind {
                    NodeKind::Buffer(c) => Some(c.0),
                    _ => None,
                })
                .collect();
            cells.sort_unstable();
            cells.dedup();
            if cells.len() > 1 {
                // load-aware sizing legitimately mixes cells along a
                // chain; the ECO rebuilds it uniformly, so only warn
                out.push(Diagnostic::warning(
                    "A002",
                    locus,
                    format!("arc mixes {} repeater cells {cells:?}", cells.len()),
                ));
            }
            // spacing: route lengths of the chain's consecutive hops
            if arc.interior.len() >= 2 {
                let gaps: Vec<f64> = arc
                    .interior
                    .iter()
                    .chain(std::iter::once(&arc.to))
                    .filter_map(|&n| ctx.tree.node(n).route.as_ref())
                    .map(clk_route::RoutePath::length_um)
                    .filter(|&l| l > 0.0)
                    .collect();
                if gaps.len() >= 2 {
                    let max = gaps.iter().copied().fold(0.0, f64::max);
                    let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
                    if max > 4.0 * min {
                        out.push(Diagnostic::warning(
                            "A004",
                            locus,
                            format!("irregular repeater spacing: hops range {min:.1}-{max:.1} um"),
                        ));
                    }
                }
            }
        }
    }
}

/// The polarity audit pass: `A005` — every sink must see the same
/// inversion parity from the source, otherwise half the domain clocks on
/// the wrong edge.
pub struct PolarityPass;

impl LintPass for PolarityPass {
    fn name(&self) -> &'static str {
        "polarity"
    }

    fn description(&self) -> &'static str {
        "all sinks see the same inversion parity from the source"
    }

    fn run(&self, ctx: &DesignCtx, out: &mut Vec<Diagnostic>) {
        if !ctx.structurally_sound() {
            return;
        }
        let parities: Vec<(NodeId, usize)> = ctx
            .tree
            .sinks()
            .map(|s| (s, ctx.tree.inversions_to(s) % 2))
            .collect();
        let odd = parities.iter().filter(|&&(_, p)| p == 1).count();
        let even = parities.len() - odd;
        if odd == 0 || even == 0 {
            return;
        }
        // report the minority side; on a tie, the odd sinks
        let minority_parity = usize::from(odd <= even);
        const CAP: usize = 16;
        let offenders: Vec<NodeId> = parities
            .iter()
            .filter(|&&(_, p)| p == minority_parity)
            .map(|&(s, _)| s)
            .collect();
        for &s in offenders.iter().take(CAP) {
            out.push(Diagnostic::error(
                "A005",
                Locus::Node(s),
                format!(
                    "sink sees {} inversion parity while {} of {} sinks see the other",
                    if minority_parity == 1 { "odd" } else { "even" },
                    parities.len() - offenders.len(),
                    parities.len()
                ),
            ));
        }
        if offenders.len() > CAP {
            out.push(Diagnostic::error(
                "A005",
                Locus::Design,
                format!("... and {} more mixed-parity sinks", offenders.len() - CAP),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_geom::Point;
    use clk_liberty::{CellId, Library, StdCorners};

    fn fixture() -> (Library, ClockTree) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let x4 = lib.cell_by_name("CLKINV_X4").expect("exists");
        let mut tree = ClockTree::new(Point::new(0, 0), x4);
        let a = tree.add_node(NodeKind::Buffer(x4), Point::new(20_000, 0), tree.root());
        let b = tree.add_node(NodeKind::Buffer(x4), Point::new(40_000, 0), a);
        tree.add_node(NodeKind::Sink, Point::new(60_000, 0), b);
        tree.add_node(NodeKind::Sink, Point::new(60_000, 1_200), b);
        (lib, tree)
    }

    fn run(pass: &dyn LintPass, lib: &Library, tree: &ClockTree) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        pass.run(&DesignCtx::new(tree, lib), &mut out);
        out
    }

    #[test]
    fn clean_tree_passes_all_arc_audits() {
        let (lib, tree) = fixture();
        assert!(run(&ArcCoverPass, &lib, &tree).is_empty());
        assert!(run(&ArcChainPass, &lib, &tree).is_empty());
        assert!(run(&PolarityPass, &lib, &tree).is_empty());
    }

    #[test]
    fn stale_arc_set_is_a001() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        let arcs = ArcSet::extract(&tree);
        // edit the tree after extraction: insert a repeater mid-chain
        let a = tree.children(tree.root())[0];
        let b = tree.children(a)[0];
        let x4 = lib.cell_by_name("CLKINV_X4").expect("exists");
        let mid = tree.add_node(NodeKind::Buffer(x4), Point::new(30_000, 0), a);
        tree.set_parent(b, mid).expect("reparent");
        let out = audit_arc_cover(&tree, &arcs);
        assert!(out.iter().any(|d| d.code == "A001"), "{out:?}");
    }

    #[test]
    fn out_of_library_cell_is_a003() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        let a = tree.children(tree.root())[0];
        tree.set_cell(a, CellId(999)).expect("set cell");
        let out = run(&ArcChainPass, &lib, &tree);
        assert!(out.iter().any(|d| d.code == "A003"), "{out:?}");
    }

    #[test]
    fn mixed_parity_is_a005() {
        let (lib, tree) = fixture();
        let mut tree = tree;
        // a third sink hanging one level higher has different parity
        let a = tree.children(tree.root())[0];
        tree.add_node(NodeKind::Sink, Point::new(40_000, 2_400), a);
        let out = run(&PolarityPass, &lib, &tree);
        assert!(out.iter().any(|d| d.code == "A005"), "{out:?}");
    }
}
