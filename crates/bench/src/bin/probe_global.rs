//! Developer probe: why does the global phase accept / reject sweeps?

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{global_optimize, GlobalConfig, StageLuts};

fn main() {
    for seed in 1..=2u64 {
        let tc = Testcase::generate(TestcaseKind::Cls1v1, 160, seed);
        let luts = StageLuts::characterize(&tc.lib);
        let cfg = GlobalConfig {
            max_pairs: 120,
            lambdas: vec![0.01, 0.05, 0.2, 0.5],
            ..GlobalConfig::default()
        };
        let (_, rep) = global_optimize(&tc.tree, &tc.lib, &tc.floorplan, &luts, &cfg);
        println!(
            "seed {seed}: {:.1} -> {:.1} ({:.1}%), lambda {:?}, arcs {}, pivots {}",
            rep.variation_before,
            rep.variation_after,
            100.0 * (1.0 - rep.variation_after / rep.variation_before),
            rep.lambda_used,
            rep.arcs_changed,
            rep.lp_iterations
        );
        for p in &rep.sweep {
            println!(
                "   lambda {:.3}: obj {:.1}, |delta| {:.1} ps, arcs {}, after {:?}, accepted {}",
                p.lambda,
                p.lp_objective,
                p.lp_total_delta,
                p.arcs_changed,
                p.variation_after,
                p.accepted
            );
        }
    }
}
