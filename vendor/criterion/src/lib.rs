//! Offline API-compatible subset of the `criterion` crate.
//!
//! See README.md: this shim exists so the workspace builds without
//! registry access. It times benchmarks with plain `std::time::Instant`
//! and prints min/median/mean per-iteration wall-clock times.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only the variants the
/// workspace uses carry meaning here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batches of ~64 iterations.
    SmallInput,
    /// Large per-iteration inputs: batches of ~8 iterations.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iters_per_batch();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / per_batch as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return self;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{id}: min {}  median {}  mean {}  ({} samples)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len(),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim only
    /// keeps the call site compatible).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
    }
}
