//! Stage-delay lookup-table characterization (paper §4.1, Figs. 2–3).
//!
//! The ECO engine never asks the golden timer "what would this buffer
//! chain's delay be" during optimization — that knowledge is characterized
//! **once per technology** into lookup tables, exactly as the paper does:
//! for every (corner, inverter size, inter-inverter spacing 10–200 µm in
//! 5 µm steps) we build a long uniform repeater chain, time it with the
//! golden timer, and record the steady-state per-inverter stage delay, the
//! steady-state slew, and the tail (last inverter + final wire segment)
//! delay.
//!
//! From the same tables we derive the cross-corner **delay-ratio bounds**
//! of Fig. 2: for a given stage delay per unit distance at the nominal
//! corner, the achievable ratio `stage_k / stage_0` is boxed by polynomial
//! curves `W_min(x)`, `W_max(x)` — constraint (11) of the LP.

use clk_geom::Point;
use clk_liberty::{CellId, CornerId, Library, Lut1};
use clk_ml::{polyfit, polyval};
use clk_netlist::{ClockTree, NodeKind};
use clk_sta::Timer;

/// Inter-inverter spacings characterized, µm (paper: 10–200 step 5).
pub fn spacing_axis() -> Vec<f64> {
    (0..=38).map(|i| 10.0 + 5.0 * f64::from(i)).collect()
}

/// Number of same-size inverters in the characterization chain.
const CHAIN_LEN: usize = 8;

/// Per-technology stage-delay tables (`LUT_uniform` plus the data the
/// detailed first/last-stage estimates need).
#[derive(Debug, Clone)]
pub struct StageLuts {
    /// `[corner][size]` → per-inverter steady-state stage delay vs spacing.
    uniform: Vec<Vec<Lut1>>,
    /// `[corner][size]` → steady-state input slew vs spacing.
    slew: Vec<Vec<Lut1>>,
    /// `[corner][size]` → tail delay (last inverter + final segment) vs
    /// spacing.
    tail: Vec<Vec<Lut1>>,
    n_sizes: usize,
    n_corners: usize,
}

impl StageLuts {
    /// Characterizes the tables for `lib` with the golden timer. One-time
    /// cost per technology (the paper's tables are reused across designs).
    pub fn characterize(lib: &Library) -> Self {
        let spacings = spacing_axis();
        let timer = Timer::golden();
        let n_sizes = lib.cells().len();
        let n_corners = lib.corner_count();
        let mut uniform = vec![Vec::with_capacity(n_sizes); n_corners];
        let mut slew = vec![Vec::with_capacity(n_sizes); n_corners];
        let mut tail = vec![Vec::with_capacity(n_sizes); n_corners];
        for size in 0..n_sizes {
            // build one chain per spacing, reused across corners
            let cases: Vec<(ClockTree, Vec<clk_netlist::NodeId>, clk_netlist::NodeId)> = spacings
                .iter()
                .map(|&q| chain_tree(lib, CellId(size), q))
                .collect();
            for k in 0..n_corners {
                let mut d_stage = Vec::with_capacity(spacings.len());
                let mut d_slew = Vec::with_capacity(spacings.len());
                let mut d_tail = Vec::with_capacity(spacings.len());
                for (tree, invs, sink) in &cases {
                    let t = timer.analyze(tree, lib, CornerId(k));
                    let a = CHAIN_LEN / 2;
                    let b = CHAIN_LEN - 1;
                    let per_stage =
                        (t.arrival_ps(invs[b]) - t.arrival_ps(invs[a])) / (b - a) as f64;
                    d_stage.push(per_stage);
                    d_slew.push(t.slew_ps(invs[b]));
                    d_tail.push(t.arrival_ps(*sink) - t.arrival_ps(invs[b]));
                }
                uniform[k].push(Lut1::new(spacings.clone(), d_stage).expect("valid axis"));
                slew[k].push(Lut1::new(spacings.clone(), d_slew).expect("valid axis"));
                tail[k].push(Lut1::new(spacings.clone(), d_tail).expect("valid axis"));
            }
        }
        StageLuts {
            uniform,
            slew,
            tail,
            n_sizes,
            n_corners,
        }
    }

    /// Steady-state per-inverter stage delay, ps.
    pub fn stage_delay(&self, corner: CornerId, size: CellId, spacing_um: f64) -> f64 {
        self.uniform[corner.0][size.0].eval(spacing_um)
    }

    /// Steady-state slew at an inverter input inside the chain, ps.
    pub fn steady_slew(&self, corner: CornerId, size: CellId, spacing_um: f64) -> f64 {
        self.slew[corner.0][size.0].eval(spacing_um)
    }

    /// Tail delay: the last inverter's gate delay plus the final wire
    /// segment into the arc's end junction, ps.
    pub fn tail_delay(&self, corner: CornerId, size: CellId, spacing_um: f64) -> f64 {
        self.tail[corner.0][size.0].eval(spacing_um)
    }

    /// Number of characterized sizes.
    pub fn n_sizes(&self) -> usize {
        self.n_sizes
    }

    /// Number of characterized corners.
    pub fn n_corners(&self) -> usize {
        self.n_corners
    }

    /// Estimated arc delay for a chain of `n_inv` inverters of `size`
    /// spaced `spacing_um` apart, entered through a driver whose gate
    /// delay is estimated from `drv_cell` and live slew (`LUT_detail`'s
    /// role for the first stage), ps.
    ///
    /// The route this realizes is `(n_inv + 1) · spacing` long.
    #[allow(clippy::too_many_arguments)]
    pub fn arc_delay_estimate(
        &self,
        lib: &Library,
        corner: CornerId,
        drv_cell: CellId,
        drv_slew_ps: f64,
        size: CellId,
        spacing_um: f64,
        n_inv: usize,
        end_load_ff: f64,
    ) -> f64 {
        let wire = lib.wire_rc(corner);
        let cin = lib.cell(size).input_cap_ff;
        if n_inv == 0 {
            // wire-only arc: driver gate + full-span wire into the end load
            let c_wire = wire.c_per_um * spacing_um;
            let gate = lib.gate_delay(drv_cell, corner, drv_slew_ps, c_wire + end_load_ff);
            let wdel = wire.r_per_um * spacing_um * (c_wire / 2.0 + end_load_ff);
            return gate + wdel;
        }
        // first stage: the junction driver into the first chain inverter
        let c_seg = wire.c_per_um * spacing_um;
        let gate_a = lib.gate_delay(drv_cell, corner, drv_slew_ps, c_seg + cin);
        let wire_a = wire.r_per_um * spacing_um * (c_seg / 2.0 + cin);
        // middle: steady-state stages; last: tail from the table
        gate_a
            + wire_a
            + (n_inv as f64 - 1.0) * self.stage_delay(corner, size, spacing_um)
            + self.tail_delay(corner, size, spacing_um)
    }

    /// `D_min` of LP constraint (10): the smallest arc delay achievable
    /// with optimal buffer insertion and **no routing detour** over a
    /// span of `length_um`, ps.
    pub fn min_arc_delay(
        &self,
        lib: &Library,
        corner: CornerId,
        drv_cell: CellId,
        drv_slew_ps: f64,
        length_um: f64,
        end_load_ff: f64,
    ) -> f64 {
        let mut best = self.arc_delay_estimate(
            lib,
            corner,
            drv_cell,
            drv_slew_ps,
            drv_cell,
            length_um,
            0,
            end_load_ff,
        );
        for size in 0..self.n_sizes {
            // even inverter counts preserve clock polarity
            for pairs in 1..=6usize {
                let n_inv = 2 * pairs;
                let spacing = length_um / (n_inv + 1) as f64;
                if spacing < 5.0 {
                    break;
                }
                let d = self.arc_delay_estimate(
                    lib,
                    corner,
                    drv_cell,
                    drv_slew_ps,
                    CellId(size),
                    spacing,
                    n_inv,
                    end_load_ff,
                );
                best = best.min(d);
            }
        }
        best
    }
}

/// Builds the uniform characterization chain: source → `CHAIN_LEN`
/// inverters of `size` spaced `q` µm → sink one segment later. Returns
/// (tree, inverter ids in order, sink id).
fn chain_tree(
    lib: &Library,
    size: CellId,
    q: f64,
) -> (ClockTree, Vec<clk_netlist::NodeId>, clk_netlist::NodeId) {
    let src_cell = CellId(lib.cells().len() - 1);
    let mut tree = ClockTree::new(Point::from_um(0.0, 0.0), src_cell);
    let mut prev = tree.root();
    let mut invs = Vec::with_capacity(CHAIN_LEN);
    for i in 1..=CHAIN_LEN {
        let n = tree.add_node(
            NodeKind::Buffer(size),
            Point::from_um(q * i as f64, 0.0),
            prev,
        );
        invs.push(n);
        prev = n;
    }
    let sink = tree.add_node(
        NodeKind::Sink,
        Point::from_um(q * (CHAIN_LEN + 1) as f64, 0.0),
        prev,
    );
    (tree, invs, sink)
}

/// The polynomial delay-ratio feasibility corridor of Fig. 2 for one
/// corner pair: `W_min(x) ≤ stage_k / stage_base ≤ W_max(x)` where `x` is
/// the stage delay per unit distance at the base corner.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioBounds {
    poly_lo: Vec<f64>,
    poly_hi: Vec<f64>,
    x_min: f64,
    x_max: f64,
}

impl RatioBounds {
    /// `(W_min, W_max)` at stage-delay-per-µm `x` (clamped into the
    /// characterized range).
    pub fn bounds(&self, x: f64) -> (f64, f64) {
        let x = x.clamp(self.x_min, self.x_max);
        let lo = polyval(&self.poly_lo, x);
        let hi = polyval(&self.poly_hi, x);
        if lo <= hi {
            (lo, hi)
        } else {
            (hi, lo)
        }
    }

    /// The fitted polynomial of the lower bound (lowest power first).
    pub fn poly_lo(&self) -> &[f64] {
        &self.poly_lo
    }

    /// The fitted polynomial of the upper bound.
    pub fn poly_hi(&self) -> &[f64] {
        &self.poly_hi
    }
}

/// The Fig. 2 scatter for corner `k` vs `base`: one point per
/// (size, spacing) — `(stage delay per µm at base, stage_k / stage_base)`.
pub fn ratio_scatter(luts: &StageLuts, k: CornerId, base: CornerId) -> Vec<(f64, f64)> {
    let mut pts = Vec::new();
    for size in 0..luts.n_sizes() {
        for &q in &spacing_axis() {
            let d0 = luts.stage_delay(base, CellId(size), q);
            let dk = luts.stage_delay(k, CellId(size), q);
            if d0 > 1e-9 {
                pts.push((d0 / q, dk / d0));
            }
        }
    }
    pts
}

/// Fits the Fig. 2 corridor: bin the scatter along `x`, take per-bin
/// extrema, fit degree-2 polynomials through them, widen by `margin`
/// (relative).
///
/// # Panics
///
/// Panics if the scatter has fewer than 3 distinct x bins.
pub fn fit_ratio_bounds(scatter: &[(f64, f64)], margin: f64) -> RatioBounds {
    assert!(!scatter.is_empty(), "empty scatter");
    let x_min = scatter.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = scatter
        .iter()
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let n_bins = 10usize;
    let width = ((x_max - x_min) / n_bins as f64).max(1e-12);
    let mut lo = vec![(f64::INFINITY, 0.0f64); n_bins];
    let mut hi = vec![(f64::NEG_INFINITY, 0.0f64); n_bins];
    let mut xs = vec![0.0f64; n_bins];
    let mut counts = vec![0usize; n_bins];
    for &(x, r) in scatter {
        let b = (((x - x_min) / width) as usize).min(n_bins - 1);
        if r < lo[b].0 {
            lo[b] = (r, x);
        }
        if r > hi[b].0 {
            hi[b] = (r, x);
        }
        xs[b] += x;
        counts[b] += 1;
    }
    let mut lo_x = Vec::new();
    let mut lo_y = Vec::new();
    let mut hi_x = Vec::new();
    let mut hi_y = Vec::new();
    for b in 0..n_bins {
        if counts[b] == 0 {
            continue;
        }
        lo_x.push(lo[b].1);
        lo_y.push(lo[b].0 * (1.0 - margin));
        hi_x.push(hi[b].1);
        hi_y.push(hi[b].0 * (1.0 + margin));
    }
    assert!(lo_x.len() >= 3, "need at least 3 populated bins");
    RatioBounds {
        poly_lo: polyfit(&lo_x, &lo_y, 2),
        poly_hi: polyfit(&hi_x, &hi_y, 2),
        x_min,
        x_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_liberty::StdCorners;

    fn luts() -> (Library, StageLuts) {
        let lib = Library::synthetic_28nm(StdCorners::c0_c1_c3());
        let luts = StageLuts::characterize(&lib);
        (lib, luts)
    }

    #[test]
    fn stage_delay_monotone_in_spacing() {
        let (_lib, luts) = luts();
        for size in 0..luts.n_sizes() {
            let d50 = luts.stage_delay(CornerId(0), CellId(size), 50.0);
            let d150 = luts.stage_delay(CornerId(0), CellId(size), 150.0);
            assert!(d150 > d50, "size {size}: {d50} !< {d150}");
        }
    }

    #[test]
    fn corner_ratios_look_like_fig2() {
        let (_lib, luts) = luts();
        let scatter1 = ratio_scatter(&luts, CornerId(1), CornerId(0));
        let mean1: f64 = scatter1.iter().map(|p| p.1).sum::<f64>() / scatter1.len() as f64;
        assert!(mean1 > 1.5 && mean1 < 2.6, "c1/c0 mean ratio {mean1}");
        let scatter3 = ratio_scatter(&luts, CornerId(2), CornerId(0));
        let mean3: f64 = scatter3.iter().map(|p| p.1).sum::<f64>() / scatter3.len() as f64;
        assert!(mean3 > 0.25 && mean3 < 0.6, "c3/c0 mean ratio {mean3}");
    }

    #[test]
    fn ratio_bounds_cover_the_scatter() {
        let (_lib, luts) = luts();
        let scatter = ratio_scatter(&luts, CornerId(1), CornerId(0));
        let bounds = fit_ratio_bounds(&scatter, 0.03);
        let mut inside = 0usize;
        for &(x, r) in &scatter {
            let (lo, hi) = bounds.bounds(x);
            if r >= lo - 1e-9 && r <= hi + 1e-9 {
                inside += 1;
            }
        }
        // the quadratic corridor must cover nearly all points
        assert!(
            inside as f64 >= 0.97 * scatter.len() as f64,
            "{inside}/{} inside",
            scatter.len()
        );
    }

    #[test]
    fn arc_estimate_tracks_golden_chain() {
        let (lib, luts) = luts();
        // golden-time an actual chain and compare the LUT estimate
        let size = CellId(2);
        let q = 60.0;
        let (tree, invs, sink) = chain_tree(&lib, size, q);
        let t = Timer::golden().analyze(&tree, &lib, CornerId(0));
        let actual = t.arrival_ps(sink); // source input -> sink
        let est = luts.arc_delay_estimate(
            &lib,
            CornerId(0),
            tree.source_cell(),
            20.0,
            size,
            q,
            invs.len(),
            lib.sink_cap_ff(),
        );
        let rel = (est - actual).abs() / actual;
        assert!(rel < 0.08, "est {est} vs golden {actual}");
    }

    #[test]
    fn min_arc_delay_not_above_unbuffered() {
        let (lib, luts) = luts();
        for corner in lib.corner_ids() {
            let unbuffered =
                luts.arc_delay_estimate(&lib, corner, CellId(4), 20.0, CellId(4), 400.0, 0, 5.0);
            let dmin = luts.min_arc_delay(&lib, corner, CellId(4), 20.0, 400.0, 5.0);
            assert!(dmin <= unbuffered + 1e-9);
            assert!(dmin > 0.0);
        }
    }

    #[test]
    fn slew_and_tail_positive() {
        let (_lib, luts) = luts();
        assert!(luts.steady_slew(CornerId(1), CellId(1), 100.0) > 0.0);
        assert!(luts.tail_delay(CornerId(1), CellId(1), 100.0) > 0.0);
    }
}
