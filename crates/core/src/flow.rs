//! End-to-end flows (`global`, `local`, `global-local`) and the Table-5
//! report.

use clk_lint::{DesignCtx, LintLevel, LintRunner};
use clk_netlist::{ClockTree, Floorplan, TreeStats};
use clk_sta::{alpha_factors, clock_power, local_skew_ps, pair_skews, variation_report, Timer};

use clk_cts::Testcase;

use crate::global::{global_optimize_guarded, GlobalConfig, GlobalReport};
use crate::local::{local_optimize_guarded, LocalConfig, LocalReport, Ranker};
use crate::lut::StageLuts;
use crate::predictor::{DeltaLatencyModel, ModelKind, TrainConfig};

/// Which optimization flow to run (the three rows per testcase of
/// Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// LP-guided global optimization only.
    Global,
    /// ML-guided local iterative optimization only.
    Local,
    /// Global, then local on the global result (the paper's headline
    /// flow).
    GlobalLocal,
}

impl std::fmt::Display for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Flow::Global => "global",
            Flow::Local => "local",
            Flow::GlobalLocal => "global-local",
        })
    }
}

/// Flow-level configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Global-phase knobs.
    pub global: GlobalConfig,
    /// Local-phase knobs.
    pub local: LocalConfig,
    /// Predictor training (used by local flows).
    pub train: TrainConfig,
    /// Which learner the local phase uses.
    pub model_kind: ModelKind,
    /// Clock frequency for the power report, GHz.
    pub freq_ghz: f64,
    /// Design-rule audit level at phase boundaries (input, post-global,
    /// post-local). Defaults to `ErrorsOnly` in debug builds and `Off` in
    /// release, where the gates cost nothing.
    pub lint_level: LintLevel,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            global: GlobalConfig::default(),
            local: LocalConfig::default(),
            train: TrainConfig::default(),
            model_kind: ModelKind::Hsm,
            freq_ghz: 1.0,
            lint_level: LintLevel::default(),
        }
    }
}

/// Runs the full `clk-lint` suite on `tree` and panics with the rendered
/// report when `level` considers it a failure. A no-op at
/// [`LintLevel::Off`], so release flows pay nothing.
///
/// # Panics
///
/// Panics when the audit fails at the configured level.
pub fn lint_gate(
    stage: &str,
    level: LintLevel,
    tree: &ClockTree,
    lib: &clk_liberty::Library,
    fp: &Floorplan,
) {
    if !level.enabled() {
        return;
    }
    let report = LintRunner::with_default_passes().run(&DesignCtx::with_floorplan(tree, lib, fp));
    assert!(
        !level.fails(&report),
        "lint gate failed after {stage}:\n{}",
        report.to_text()
    );
}

/// The Table-5 row: metric deltas of one flow on one testcase.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Flow that produced this report.
    pub flow: Flow,
    /// Σ variation before, ps (normalized column of Table 5).
    pub variation_before: f64,
    /// Σ variation after, ps.
    pub variation_after: f64,
    /// Local skew per corner before, ps.
    pub local_skew_before: Vec<f64>,
    /// Local skew per corner after, ps.
    pub local_skew_after: Vec<f64>,
    /// Clock cells before.
    pub cells_before: usize,
    /// Clock cells after.
    pub cells_after: usize,
    /// Clock-tree power before (corner 0), mW.
    pub power_before_mw: f64,
    /// Clock-tree power after, mW.
    pub power_after_mw: f64,
    /// Clock-cell area before, µm².
    pub area_before_um2: f64,
    /// Clock-cell area after, µm².
    pub area_after_um2: f64,
    /// The optimized tree.
    pub tree: ClockTree,
    /// Global-phase details when the flow ran it.
    pub global_report: Option<GlobalReport>,
    /// Local-phase details when the flow ran it.
    pub local_report: Option<LocalReport>,
}

impl OptReport {
    /// `after / before` of the variation sum (the `[norm]` column).
    pub fn variation_ratio(&self) -> f64 {
        if self.variation_before <= 0.0 {
            1.0
        } else {
            self.variation_after / self.variation_before
        }
    }
}

/// Runs `flow` on the testcase, characterizing LUTs and training the
/// predictor as needed. For repeated runs share them via
/// [`optimize_with`].
pub fn optimize(tc: &Testcase, flow: Flow, cfg: &FlowConfig) -> OptReport {
    let luts =
        matches!(flow, Flow::Global | Flow::GlobalLocal).then(|| StageLuts::characterize(&tc.lib));
    let model = matches!(flow, Flow::Local | Flow::GlobalLocal)
        .then(|| DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train));
    optimize_with(tc, flow, cfg, luts.as_ref(), model.as_ref())
}

/// Runs `flow` with pre-characterized LUTs / a pre-trained model (both
/// are per-technology artifacts the paper reuses across designs).
///
/// # Panics
///
/// Panics if the flow needs an artifact that was not provided.
pub fn optimize_with(
    tc: &Testcase,
    flow: Flow,
    cfg: &FlowConfig,
    luts: Option<&StageLuts>,
    model: Option<&DeltaLatencyModel>,
) -> OptReport {
    let lib = &tc.lib;
    lint_gate(
        "CTS (flow input)",
        cfg.lint_level,
        &tc.tree,
        lib,
        &tc.floorplan,
    );
    let timer = Timer::golden();
    let skews0: Vec<Vec<f64>> = timer
        .analyze_all(&tc.tree, lib)
        .iter()
        .map(|t| pair_skews(t, tc.tree.sink_pairs()))
        .collect();
    let alphas = alpha_factors(&skews0);
    let variation_before = variation_report(&skews0, &alphas, None).sum;
    let local_skew_before: Vec<f64> = skews0.iter().map(|s| local_skew_ps(s)).collect();
    let stats0 = TreeStats::compute(&tc.tree, lib);
    let power_before = clock_power(
        &tc.tree,
        lib,
        &timer.analyze(&tc.tree, lib, clk_liberty::CornerId(0)),
        cfg.freq_ghz,
    );

    let mut tree = tc.tree.clone();
    let mut global_report = None;
    let mut local_report = None;
    if matches!(flow, Flow::Global | Flow::GlobalLocal) {
        let luts = luts.expect("global flows need characterized stage LUTs");
        let (opt, rep) = global_optimize_guarded(
            &tree,
            lib,
            &tc.floorplan,
            luts,
            &cfg.global,
            Some(&local_skew_before),
        );
        tree = opt;
        global_report = Some(rep);
        lint_gate(
            "global optimization",
            cfg.lint_level,
            &tree,
            lib,
            &tc.floorplan,
        );
    }
    if matches!(flow, Flow::Local | Flow::GlobalLocal) {
        let model = model.expect("local flows need a trained predictor");
        let rep = local_optimize_guarded(
            &mut tree,
            lib,
            &tc.floorplan,
            Ranker::Ml(model),
            &cfg.local,
            Some(&local_skew_before),
        );
        local_report = Some(rep);
        lint_gate(
            "local optimization",
            cfg.lint_level,
            &tree,
            lib,
            &tc.floorplan,
        );
    }

    let skews1: Vec<Vec<f64>> = timer
        .analyze_all(&tree, lib)
        .iter()
        .map(|t| pair_skews(t, tree.sink_pairs()))
        .collect();
    let variation_after = variation_report(&skews1, &alphas, None).sum;
    let local_skew_after: Vec<f64> = skews1.iter().map(|s| local_skew_ps(s)).collect();
    let stats1 = TreeStats::compute(&tree, lib);
    let power_after = clock_power(
        &tree,
        lib,
        &timer.analyze(&tree, lib, clk_liberty::CornerId(0)),
        cfg.freq_ghz,
    );

    OptReport {
        flow,
        variation_before,
        variation_after,
        local_skew_before,
        local_skew_after,
        cells_before: stats0.n_buffers,
        cells_after: stats1.n_buffers,
        power_before_mw: power_before.total_mw(),
        power_after_mw: power_after.total_mw(),
        area_before_um2: stats0.buffer_area_um2,
        area_after_um2: stats1.buffer_area_um2,
        tree,
        global_report,
        local_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clk_cts::TestcaseKind;
    use clk_ml::MlpConfig;

    fn quick_cfg() -> FlowConfig {
        FlowConfig {
            global: GlobalConfig {
                max_pairs: 30,
                lambdas: vec![0.05, 0.3],
                rounds: 1,
                ..GlobalConfig::default()
            },
            local: LocalConfig {
                max_iterations: 2,
                max_batches: 1,
                ..LocalConfig::default()
            },
            train: TrainConfig {
                n_cases: 5,
                moves_per_case: 8,
                mlp: MlpConfig {
                    epochs: 30,
                    ..MlpConfig::default()
                },
                ..TrainConfig::default()
            },
            ..FlowConfig::default()
        }
    }

    #[test]
    fn global_local_flow_improves_and_reports() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 40, 31);
        let report = optimize(&tc, Flow::GlobalLocal, &quick_cfg());
        report.tree.validate().unwrap();
        assert!(report.variation_ratio() <= 1.0);
        assert!(report.global_report.is_some());
        assert!(report.local_report.is_some());
        assert_eq!(report.local_skew_before.len(), 3);
        assert!(report.power_before_mw > 0.0);
        assert!(report.cells_before > 0);
        // cell-count overhead stays small (paper: ~1-2%)
        assert!(
            (report.cells_after as f64) < 1.35 * report.cells_before as f64,
            "cells {} -> {}",
            report.cells_before,
            report.cells_after
        );
    }

    #[test]
    fn flow_names_are_stable() {
        assert_eq!(Flow::Global.to_string(), "global");
        assert_eq!(Flow::Local.to_string(), "local");
        assert_eq!(Flow::GlobalLocal.to_string(), "global-local");
    }

    #[test]
    fn pure_global_flow_needs_no_model() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 24, 33);
        let luts = crate::lut::StageLuts::characterize(&tc.lib);
        let report = optimize_with(&tc, Flow::Global, &quick_cfg(), Some(&luts), None);
        assert!(report.local_report.is_none());
        assert!(report.variation_ratio() <= 1.0 + 1e-9);
        assert!(report.variation_ratio() > 0.0);
    }

    #[test]
    fn pure_local_flow_runs() {
        let tc = clk_cts::Testcase::generate(TestcaseKind::Cls1v1, 32, 32);
        let report = optimize(&tc, Flow::Local, &quick_cfg());
        assert!(report.global_report.is_none());
        assert!(report.variation_ratio() <= 1.0);
    }
}
