#![warn(missing_docs)]

//! Workbench helpers shared by the runnable examples and the integration
//! tests: compact report formatting for [`clk_skewopt::OptReport`] and
//! scaled default configurations that finish in seconds on a laptop.

use clk_ml::MlpConfig;
use clk_skewopt::{FlowConfig, GlobalConfig, LocalConfig, OptReport, TrainConfig};

/// A flow configuration scaled for interactive runs (tens of seconds):
/// fewer LP pairs, a short λ sweep, few local iterations and a small
/// training set.
pub fn quick_flow_config() -> FlowConfig {
    FlowConfig {
        global: GlobalConfig {
            max_pairs: 60,
            lambdas: vec![0.05, 0.3],
            rounds: 2,
            ..GlobalConfig::default()
        },
        local: LocalConfig {
            max_iterations: 6,
            max_batches: 2,
            ..LocalConfig::default()
        },
        train: TrainConfig {
            n_cases: 10,
            moves_per_case: 16,
            mlp: MlpConfig {
                epochs: 60,
                ..MlpConfig::default()
            },
            ..TrainConfig::default()
        },
        ..FlowConfig::default()
    }
}

/// Formats one Table-5-style row:
/// `flow | variation [norm] | skew per corner | #cells | power | area`.
pub fn table5_row(name: &str, report: &OptReport) -> String {
    let skews: Vec<String> = report
        .local_skew_after
        .iter()
        .map(|s| format!("{s:6.1}"))
        .collect();
    format!(
        "{name:<14} {:>8.1} [{:.2}]  {}  {:>5}  {:>7.3}  {:>8.1}",
        report.variation_after,
        report.variation_ratio(),
        skews.join(" "),
        report.cells_after,
        report.power_after_mw,
        report.area_after_um2,
    )
}

/// The header matching [`table5_row`].
pub fn table5_header(corner_names: &[String]) -> String {
    let skews: Vec<String> = corner_names.iter().map(|c| format!("{c:>6}")).collect();
    format!(
        "{:<14} {:>8} {:>6}  {}  {:>5}  {:>7}  {:>8}",
        "flow",
        "var(ps)",
        "[norm]",
        skews.join(" "),
        "#cell",
        "mW",
        "area"
    )
}

/// The "orig" baseline row derived from a report's before-metrics.
pub fn table5_orig_row(report: &OptReport) -> String {
    let skews: Vec<String> = report
        .local_skew_before
        .iter()
        .map(|s| format!("{s:6.1}"))
        .collect();
    format!(
        "{:<14} {:>8.1} [1.00]  {}  {:>5}  {:>7.3}  {:>8.1}",
        "orig",
        report.variation_before,
        skews.join(" "),
        report.cells_before,
        report.power_before_mw,
        report.area_before_um2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_default() {
        let q = quick_flow_config();
        let d = FlowConfig::default();
        assert!(q.global.max_pairs < d.global.max_pairs);
        assert!(q.train.n_cases < d.train.n_cases);
    }
}
