// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]
#![warn(missing_docs)]

//! Machine-learning substrate: the MATLAB stand-in behind the paper's
//! delta-latency predictors.
//!
//! The paper trains, per corner, three regression models — an Artificial
//! Neural Network, an SVM with RBF kernel, and HSM (Hybrid Surrogate
//! Modeling, a validation-weighted blend \[Kahng-Lin-Nath, DATE'13\]) — on
//! features extracted from candidate ECO moves. This crate provides those
//! model classes plus the numerics they need:
//!
//! * [`linalg`]: dense matrices, LU and Cholesky solves, polynomial least
//!   squares ([`polyfit`], also used for the Fig. 2 delay-ratio bounds);
//! * [`scale::StandardScaler`]: feature standardization;
//! * [`Mlp`]: feed-forward net (tanh hidden layers, linear output) trained
//!   with mini-batch SGD + momentum;
//! * [`LsSvm`]: least-squares SVM regression with an RBF kernel (the
//!   kernel-machine stand-in for ε-SVR; one linear solve instead of SMO);
//! * [`Hsm`]: convex blend of base models with weights picked on a
//!   validation split;
//! * [`cv`]: k-fold splits and error metrics (MSE, MAPE, R²).
//!
//! # Examples
//!
//! ```
//! use clk_ml::{Mlp, MlpConfig, Regressor};
//!
//! // learn y = 2a - b on a small grid
//! let xs: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1]).collect();
//! let model = Mlp::train(&xs, &ys, &MlpConfig::default());
//! let err = (model.predict(&[0.55, 0.25]) - 0.85).abs();
//! assert!(err < 0.15, "err = {err}");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod cv;
pub mod hsm;
pub mod linalg;
pub mod mlp;
pub mod scale;
pub mod svm;

pub use cv::{kfold_indices, mape, mse, r_squared, train_val_split};
pub use hsm::Hsm;
pub use linalg::{polyfit, polyval, Matrix};
pub use mlp::{Mlp, MlpConfig};
pub use scale::StandardScaler;
pub use svm::LsSvm;

/// A trained regression model mapping a feature vector to a scalar.
///
/// Object-safe so heterogeneous models can be blended by [`Hsm`].
pub trait Regressor: Send + Sync {
    /// Predicts the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts a batch (default: map [`Regressor::predict`]).
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

impl<T: Regressor + ?Sized> Regressor for Box<T> {
    fn predict(&self, x: &[f64]) -> f64 {
        (**self).predict(x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        (**self).predict_batch(xs)
    }
}
