//! SPEF output for extracted nets — the parasitics-interchange stand-in
//! (the paper's flow hands extracted parasitics to the golden timer; this
//! lets external timers consume ours).

use std::fmt::Write as _;

use crate::rc::RcTree;

/// Writes a single-net SPEF fragmentary file: header, one `*D_NET` with
/// `*CAP` and `*RES` sections. Node `0` (the driver) is named
/// `<net>:drv`; every other RC node is `<net>:<index>`.
///
/// ```
/// use clk_delay::{spef::write_spef, RcTree};
/// let net = RcTree::from_raw(
///     vec![None, Some(0)],
///     vec![0.0, 1.5],
///     vec![0.2, 3.0],
/// );
/// let text = write_spef("clk_net", &net);
/// assert!(text.contains("*D_NET clk_net"));
/// assert!(text.contains("*RES"));
/// ```
pub fn write_spef(net: &str, tree: &RcTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF \"IEEE 1481-1998\"");
    let _ = writeln!(out, "*DESIGN \"clockvar\"");
    let _ = writeln!(out, "*T_UNIT 1 PS");
    let _ = writeln!(out, "*C_UNIT 1 FF");
    let _ = writeln!(out, "*R_UNIT 1 KOHM");
    let _ = writeln!(out, "*L_UNIT 1 HENRY");
    let _ = writeln!(out);
    let name = |i: usize| -> String {
        if i == 0 {
            format!("{net}:drv")
        } else {
            format!("{net}:{i}")
        }
    };
    let _ = writeln!(out, "*D_NET {net} {:.6}", tree.total_cap_ff());
    let _ = writeln!(out, "*CONN");
    let _ = writeln!(out, "*I {} O", name(0));
    let _ = writeln!(out, "*CAP");
    let mut cap_idx = 1usize;
    for i in 0..tree.node_count() {
        let c = tree.cap_ff(i);
        if c > 0.0 {
            let _ = writeln!(out, "{cap_idx} {} {c:.6}", name(i));
            cap_idx += 1;
        }
    }
    let _ = writeln!(out, "*RES");
    for i in 1..tree.node_count() {
        let p = tree.parent(i).expect("non-root");
        let _ = writeln!(out, "{i} {} {} {:.6}", name(p), name(i), tree.res_kohm(i));
    }
    let _ = writeln!(out, "*END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RcTree {
        RcTree::from_raw(
            vec![None, Some(0), Some(1), Some(1)],
            vec![0.0, 0.5, 1.0, 0.7],
            vec![0.1, 2.0, 3.0, 0.0],
        )
    }

    #[test]
    fn spef_has_all_sections_and_counts() {
        let t = net();
        let s = write_spef("n42", &t);
        for marker in ["*SPEF", "*D_NET n42", "*CONN", "*CAP", "*RES", "*END"] {
            assert!(s.contains(marker), "missing {marker}");
        }
        // 3 nonzero caps, 3 resistors
        let res_lines = s
            .lines()
            .skip_while(|l| !l.starts_with("*RES"))
            .skip(1)
            .take_while(|l| !l.starts_with('*'))
            .count();
        assert_eq!(res_lines, 3);
        assert!(s.contains(&format!("*D_NET n42 {:.6}", t.total_cap_ff())));
    }

    #[test]
    fn node_names_are_stable() {
        let s = write_spef("x", &net());
        assert!(s.contains("x:drv x:1"));
        assert!(s.contains("x:1 x:2"));
        assert!(s.contains("x:1 x:3"));
    }
}
