//! Demonstrates the flow's lint gates: a fresh testcase passes the
//! full audit, while a corrupted tree is rejected at the phase boundary
//! with the offending diagnostics in the panic message.
//!
//! Run with `cargo run -p clk-bench --example lint_gate` (the gates are
//! active in debug builds; in release they are off by default).

use clk_cts::{Testcase, TestcaseKind};
use clk_lint::LintLevel;
use clk_skewopt::lint_gate;

fn main() {
    let tc = Testcase::generate(TestcaseKind::Cls1v1, 24, 7);

    lint_gate(
        "demo (clean tree)",
        LintLevel::ErrorsOnly,
        &tc.tree,
        &tc.lib,
        &tc.floorplan,
    );
    println!("clean tree: gate passed");

    // corrupt a parent/child link the way a buggy ECO might
    let mut bad = tc.tree.clone();
    let victim = bad
        .buffers()
        .find(|&b| bad.parent(b).and_then(|p| bad.parent(p)).is_some())
        .expect("multi-level tree");
    let parent = bad.parent(victim).expect("has parent");
    bad.debug_unlink_child(parent, victim);

    let outcome = std::panic::catch_unwind(|| {
        lint_gate(
            "demo (corrupted tree)",
            LintLevel::ErrorsOnly,
            &bad,
            &tc.lib,
            &tc.floorplan,
        );
    });
    match outcome {
        Ok(()) => println!("corrupted tree: gate let it through (BUG)"),
        Err(_) => println!("corrupted tree: gate rejected it"),
    }
}
