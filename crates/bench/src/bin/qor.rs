//! QoR & performance regression gate: runs the flow suite (the
//! testcases behind tables 4/5) with observability enabled, emits a
//! versioned `BENCH_qor.json` snapshot plus a Chrome trace-event
//! `trace.json`, and diffs the snapshot against the committed
//! `qor-baseline.json` with noise-aware tolerance bands.
//!
//! ```sh
//! cargo run --release -p clk-bench --bin qor -- --quick --seed 2015
//! ```
//!
//! Exit code 0 when every gated metric is within tolerance of the
//! baseline (or improved); non-zero on any regression, structural
//! mismatch, or flow failure. Flags:
//!
//! * `--out PATH` — snapshot output (default `BENCH_qor.json`);
//! * `--trace PATH` — Chrome trace output (default `trace.json`; load
//!   it at <https://ui.perfetto.dev> or `about://tracing`);
//! * `--baseline PATH` — baseline to gate against (default
//!   `qor-baseline.json`);
//! * `--write-baseline` — refresh the baseline from this run and exit;
//! * `--self-diff` — diff this run against itself (sanity check of the
//!   gate plumbing; always exits 0);
//! * `--trajectory PATH` — append-only per-run QoR history (default
//!   `BENCH_trajectory.jsonl`); each run appends one JSONL line keyed
//!   by git revision and seed (no wall-clock timestamps — provenance
//!   is the revision), and the bin prints the variation trend across
//!   the recorded runs of the same suite/seed;
//! * `--verbose` — include neutral/informational rows in the report.

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use std::process::ExitCode;

use clk_bench::{suite_cases, ExpArgs, PreparedCase};
use clk_netlist::TreeStats;
use clk_obs::{chrome, json, Level, Obs, ObsConfig, SharedBuf, Value};
use clk_qor::{diff_snapshots, QorSnapshot, TestcaseQor, TolerancePolicy};
use clk_skewopt::Flow;

struct QorArgs {
    exp: ExpArgs,
    out: String,
    trace: String,
    baseline: String,
    trajectory: String,
    write_baseline: bool,
    self_diff: bool,
    verbose: bool,
}

fn parse_args() -> QorArgs {
    let argv: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    QorArgs {
        exp: ExpArgs::parse(),
        out: flag_val("--out").unwrap_or_else(|| "BENCH_qor.json".to_string()),
        trace: flag_val("--trace").unwrap_or_else(|| "trace.json".to_string()),
        baseline: flag_val("--baseline").unwrap_or_else(|| "qor-baseline.json".to_string()),
        trajectory: flag_val("--trajectory")
            .unwrap_or_else(|| "BENCH_trajectory.jsonl".to_string()),
        write_baseline: argv.iter().any(|a| a == "--write-baseline"),
        self_diff: argv.iter().any(|a| a == "--self-diff"),
        verbose: argv.iter().any(|a| a == "--verbose"),
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> ExitCode {
    let args = parse_args();
    let n = args
        .exp
        .sinks
        .unwrap_or(if args.exp.quick { 48 } else { 128 });
    let seed = args.exp.seed;
    let suite_name = if args.exp.quick { "quick" } else { "full" };
    let cfg_base = if args.exp.quick {
        clockvar_workbench::quick_flow_config()
    } else {
        let mut cfg = clk_skewopt::FlowConfig::default();
        cfg.global.max_pairs = 120;
        cfg.local.max_iterations = 12;
        cfg.train.n_cases = 60;
        cfg.train.moves_per_case = 60;
        cfg
    };

    println!("qor: suite '{suite_name}', seed {seed}, {n} sinks/testcase, flow global-local");
    let mut snap = QorSnapshot::new(git_rev(), seed, suite_name);
    let mut trace_events: Vec<Value> = Vec::new();

    for (i, case) in suite_cases(seed).into_iter().enumerate() {
        let obs = Obs::new(ObsConfig {
            verbosity: Level::Debug,
            ..ObsConfig::default()
        });
        let buf = SharedBuf::new();
        obs.add_jsonl_buffer(&buf);
        let mut cfg = cfg_base.clone();
        cfg.obs = obs.clone();

        let prep = PreparedCase::generate(case, n, &cfg, &[Flow::GlobalLocal]);
        let (report, runtime_ms) = match prep.run(Flow::GlobalLocal, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL: {} flow failed: {e}", case.kind.name());
                return ExitCode::FAILURE;
            }
        };
        obs.flush();
        let wirelength = TreeStats::compute(&report.tree, &prep.tc.lib).wirelength_um;
        let rec = TestcaseQor::from_report(
            case.kind.name(),
            &prep.corner_names(),
            &report,
            obs.metrics_snapshot().as_ref(),
            runtime_ms,
            wirelength,
        );
        println!(
            "  {:<8} var {:>7.1} -> {:>7.1} ps [{:.2}]  cells {} -> {}  faults {}  {:.1}s",
            rec.id,
            rec.variation_before_ps,
            rec.variation_after_ps,
            report.variation_ratio(),
            rec.cells_before,
            rec.cells_after,
            rec.faults_absorbed,
            runtime_ms / 1e3,
        );
        snap.testcases.push(rec);
        // one Chrome-trace process per testcase run
        match chrome::trace_events_from_jsonl(&buf.contents(), i as u64 + 1) {
            Ok(mut evs) => trace_events.append(&mut evs),
            Err(e) => {
                eprintln!("FAIL: {} trace does not convert: {e}", case.kind.name());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Err(e) = std::fs::write(&args.out, snap.to_json_pretty()) {
        eprintln!("FAIL: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("snapshot written to {}", args.out);
    let doc = chrome::trace_document(trace_events);
    if let Err(e) = std::fs::write(&args.trace, doc.to_json()) {
        eprintln!("FAIL: cannot write {}: {e}", args.trace);
        return ExitCode::FAILURE;
    }
    println!(
        "chrome trace written to {} (load at ui.perfetto.dev)",
        args.trace
    );

    // ---- append-only trajectory + trend across recorded runs ----
    // provenance is (git rev, seed): deliberately no wall-clock
    // timestamp, so the record stays reproducible and wall_now() stays
    // confined to clk-obs (A003)
    let traj_line = Value::Obj(vec![
        ("rev".to_string(), Value::from(snap.git_rev.as_str())),
        ("seed".to_string(), Value::from(seed)),
        ("suite".to_string(), Value::from(suite_name)),
        (
            "cases".to_string(),
            Value::Arr(
                snap.testcases
                    .iter()
                    .map(|t| {
                        Value::Obj(vec![
                            ("id".to_string(), Value::from(t.id.as_str())),
                            ("var_after_ps".to_string(), Value::Num(t.variation_after_ps)),
                            ("runtime_ms".to_string(), Value::Num(t.runtime_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&args.trajectory)
        .and_then(|mut f| {
            use std::io::Write as _;
            writeln!(f, "{}", traj_line.to_json())
        });
    if let Err(e) = appended {
        eprintln!("FAIL: cannot append to {}: {e}", args.trajectory);
        return ExitCode::FAILURE;
    }
    if let Ok(text) = std::fs::read_to_string(&args.trajectory) {
        let runs: Vec<Value> = text
            .lines()
            .filter_map(|l| json::parse(l).ok())
            .filter(|v| {
                v.get("suite").and_then(Value::as_str) == Some(suite_name)
                    && v.get("seed").and_then(Value::as_u64) == Some(seed)
            })
            .collect();
        println!(
            "\ntrajectory: {} recorded runs of suite '{suite_name}' seed {seed} in {}",
            runs.len(),
            args.trajectory
        );
        for tq in &snap.testcases {
            // this case's variation across runs, oldest first
            let series: Vec<(String, f64)> = runs
                .iter()
                .filter_map(|r| {
                    let rev = r.get("rev").and_then(Value::as_str)?.to_string();
                    let v = r.get("cases").and_then(|c| match c {
                        Value::Arr(items) => items
                            .iter()
                            .find(|it| it.get("id").and_then(Value::as_str) == Some(&tq.id))
                            .and_then(|it| it.get("var_after_ps"))
                            .and_then(Value::as_f64),
                        _ => None,
                    })?;
                    Some((rev, v))
                })
                .collect();
            let tail: Vec<String> = series
                .iter()
                .rev()
                .take(8)
                .rev()
                .map(|(_, v)| format!("{v:.1}"))
                .collect();
            let delta = (series.len() >= 2)
                .then(|| series[series.len() - 1].1 - series[series.len() - 2].1);
            let best = series
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(rev, v)| format!("{v:.1} @ {rev}"));
            println!(
                "  {:<8} var_after: [{}] ps{}  best {}",
                tq.id,
                tail.join(" "),
                delta.map_or(String::new(), |d| format!("  Δ vs prev {d:+.1}")),
                best.unwrap_or_else(|| "—".to_string()),
            );
        }
    }

    if args.write_baseline {
        if let Err(e) = std::fs::write(&args.baseline, snap.to_json_pretty()) {
            eprintln!("FAIL: cannot write {}: {e}", args.baseline);
            return ExitCode::FAILURE;
        }
        println!("baseline refreshed at {}", args.baseline);
        return ExitCode::SUCCESS;
    }

    let policy = TolerancePolicy::default_qor();
    let base = if args.self_diff {
        snap.clone()
    } else {
        match std::fs::read_to_string(&args.baseline) {
            Ok(text) => match QorSnapshot::parse_str(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("FAIL: baseline {} does not parse: {e}", args.baseline);
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                println!(
                    "no baseline at {}; skipping the gate (seed one with --write-baseline)",
                    args.baseline
                );
                return ExitCode::SUCCESS;
            }
        }
    };
    let label = if args.self_diff {
        "self-diff".to_string()
    } else {
        format!("baseline {} (rev {})", args.baseline, base.git_rev)
    };
    println!("\ndiff vs {label}:");
    let diff = diff_snapshots(&base, &snap, &policy);
    print!("{}", diff.to_text(args.verbose));
    if diff.has_regressions() {
        eprintln!("FAIL: QoR regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("qor: gate clean");
        ExitCode::SUCCESS
    }
}
