//! Application-processor scenario: both CLS1 variants through all three
//! flows (`global`, `local`, `global-local`), reproducing the structure of
//! the paper's Table 5 on the scaled testcases.
//!
//! ```sh
//! cargo run --release --example app_processor -- [n_sinks]
//! ```

// float arithmetic is the domain here; the workspace lint exists for
// exact-arithmetic code (clk-cert escalates it to deny)
#![allow(clippy::float_arithmetic)]

use clk_cts::{Testcase, TestcaseKind};
use clk_skewopt::{optimize_with, DeltaLatencyModel, Flow, StageLuts};
use clockvar_workbench::{quick_flow_config, table5_header, table5_orig_row, table5_row};

fn main() {
    let n_sinks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    let cfg = quick_flow_config();

    for (kind, seed) in [(TestcaseKind::Cls1v1, 1), (TestcaseKind::Cls1v2, 2)] {
        println!("=== {} ({n_sinks} sinks, seed {seed}) ===", kind.name());
        let tc = Testcase::generate(kind, n_sinks, seed);
        println!(
            "  {} clock cells, {:.2} mm2, util {:.0}%",
            tc.tree.buffers().count(),
            tc.area_mm2(),
            100.0 * tc.kind.utilization()
        );
        // per-technology artifacts are characterized once and shared
        let luts = StageLuts::characterize(&tc.lib);
        let model = DeltaLatencyModel::train(&tc.lib, cfg.model_kind, &cfg.train);

        let corner_names: Vec<String> = tc.lib.corners().iter().map(|c| c.name.clone()).collect();
        println!("{}", table5_header(&corner_names));
        let mut printed_orig = false;
        for flow in [Flow::Global, Flow::Local, Flow::GlobalLocal] {
            let report = optimize_with(&tc, flow, &cfg, Some(&luts), Some(&model));
            if !printed_orig {
                println!("{}", table5_orig_row(&report));
                printed_orig = true;
            }
            println!("{}", table5_row(&flow.to_string(), &report));
        }
        println!();
    }
}
